"""Linear programs: variables, constraints, matrix export.

All variables are non-negative by default (resource coefficients live in
``Q≥0``).  Constraints are stored in normalized form ``lhs ≤ rhs`` or
``lhs = rhs`` with a provenance note for debugging infeasibilities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .expr import LinExpr, as_expr
from ..errors import LPError, ResourceLimitError


@dataclass
class Constraint:
    lhs: LinExpr
    sense: str  # '<=' or '='
    rhs: LinExpr
    note: str = ""

    def gap(self) -> LinExpr:
        """``rhs - lhs`` (non-negative when the constraint holds)."""
        return self.rhs - self.lhs

    def holds(self, assignment, tol: float = 1e-6) -> bool:
        gap = self.gap().evaluate(assignment)
        if self.sense == "<=":
            return gap >= -tol
        return abs(gap) <= tol

    def __str__(self) -> str:
        return f"{self.lhs} {self.sense} {self.rhs}" + (f"  [{self.note}]" if self.note else "")


class LPProblem:
    """A collection of non-negative variables and linear constraints."""

    def __init__(
        self,
        name: str = "lp",
        max_variables: Optional[int] = None,
        max_constraints: Optional[int] = None,
    ):
        self.name = name
        self.constraints: List[Constraint] = []
        self._vars: Dict[str, int] = {}
        self._counter = itertools.count()
        #: size budget for untrusted programs (None = uncapped): constraint
        #: generation on adversarial recursion shapes can go quadratic or
        #: worse, so the guard trips *while building*, before any solve
        self.max_variables = max_variables
        self.max_constraints = max_constraints
        #: cached to_matrices() result; the per-posterior-sample LP loops of
        #: BayesWC/BayesPC re-solve the same problem with different pinned
        #: bounds, so matrix assembly must not be repeated M times
        self._matrix_cache = None

    # -- variables ------------------------------------------------------------

    def fresh(self, hint: str = "q") -> LinExpr:
        name = f"{hint}.{next(self._counter)}"
        self.declare(name)
        return LinExpr.var(name)

    def declare(self, name: str) -> None:
        if name not in self._vars:
            if self.max_variables is not None and len(self._vars) >= self.max_variables:
                raise ResourceLimitError(
                    f"LP exceeds the {self.max_variables}-variable budget",
                    kind="variables",
                    limit=self.max_variables,
                )
            self._vars[name] = len(self._vars)
            self._matrix_cache = None

    def declare_expr(self, expr: LinExpr) -> None:
        for name in expr.coeffs:
            self.declare(name)

    @property
    def variables(self) -> List[str]:
        return list(self._vars.keys())

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    # -- constraints ------------------------------------------------------------

    def add_le(self, lhs, rhs, note: str = "") -> Constraint:
        con = Constraint(as_expr(lhs), "<=", as_expr(rhs), note)
        self._register(con)
        return con

    def add_ge(self, lhs, rhs, note: str = "") -> Constraint:
        return self.add_le(rhs, lhs, note)

    def add_eq(self, lhs, rhs, note: str = "") -> Constraint:
        con = Constraint(as_expr(lhs), "=", as_expr(rhs), note)
        self._register(con)
        return con

    def _register(self, con: Constraint) -> None:
        if (
            self.max_constraints is not None
            and len(self.constraints) >= self.max_constraints
        ):
            raise ResourceLimitError(
                f"LP exceeds the {self.max_constraints}-constraint budget",
                kind="constraints",
                limit=self.max_constraints,
            )
        self.declare_expr(con.lhs)
        self.declare_expr(con.rhs)
        self.constraints.append(con)
        self._matrix_cache = None

    def extend(self, other: "LPProblem") -> None:
        """Merge another problem's variables and constraints into this one."""
        for name in other.variables:
            self.declare(name)
        self.constraints.extend(other.constraints)

    def copy(self) -> "LPProblem":
        clone = LPProblem(self.name, self.max_variables, self.max_constraints)
        clone._vars = dict(self._vars)
        clone._counter = itertools.count(next(self._counter))
        clone.constraints = list(self.constraints)
        clone._matrix_cache = None
        return clone

    # -- matrix export ------------------------------------------------------------

    def column_index(self) -> Dict[str, int]:
        return dict(self._vars)

    def to_matrices(
        self, extra_vars: Sequence[str] = ()
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Dict[str, int]]:
        """Export as ``A_ub x <= b_ub``, ``A_eq x = b_eq`` over declared vars.

        Does NOT include the implicit non-negativity bounds; callers add
        them where needed (the solver passes bounds, the polytope module
        appends ``-I x <= 0`` rows).
        """
        if not extra_vars and self._matrix_cache is not None:
            return self._matrix_cache
        index = self.column_index()
        for name in extra_vars:
            if name not in index:
                index[name] = len(index)
        n = len(index)
        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            diff = con.lhs - con.rhs
            for name, coef in diff.coeffs.items():
                row[index[name]] = coef
            if con.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(-diff.const)
            else:
                eq_rows.append(row)
                eq_rhs.append(-diff.const)
        A_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        A_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        result = (A_ub, b_ub, A_eq, b_eq, index)
        if not extra_vars:
            self._matrix_cache = result
        return result

    def check(self, assignment: Dict[str, float], tol: float = 1e-5) -> Optional[Constraint]:
        """Return the first violated constraint under ``assignment`` or None."""
        for con in self.constraints:
            if not con.holds(assignment, tol):
                return con
        return None

    def __len__(self) -> int:
        return len(self.constraints)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"LP {self.name}: {self.num_vars} vars, {len(self.constraints)} constraints"]
        lines += [f"  {con}" for con in self.constraints]
        return "\n".join(lines)


def validate_objective(problem: LPProblem, objective: LinExpr) -> None:
    for name in objective.coeffs:
        if name not in problem._vars:
            raise LPError(f"objective references undeclared variable {name!r}")
