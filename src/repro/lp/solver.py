"""LP solving with scipy's HiGHS backend, plus lexicographic objectives.

Hybrid AARA solves its joint linear programs in two stages (Section 6.1):
first minimize the total cost gap of the data-driven components, then
minimize the resource coefficients of the root typing context with
higher-degree coefficients weighted more heavily.  :func:`solve_lexicographic`
implements the staging by re-solving with the previous optimum pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.optimize import OptimizeResult, linprog
from scipy.sparse import csr_matrix

from .expr import LinExpr
from .problem import LPProblem
from .. import faultinject, telemetry
from ..errors import InfeasibleError, LPError

#: relative slack allowed when pinning a stage optimum for the next stage
STAGE_TOLERANCE = 1e-9

#: fallback chain for numerical solver failures: alternate HiGHS
#: algorithms first, then one retry with a tiny deterministic loosening
#: of the inequality right-hand sides (the degenerate AARA LPs sit right
#: on facet intersections, where HiGHS occasionally reports status 4)
FALLBACK_METHODS = ("highs", "highs-ds", "highs-ipm")
PERTURB_SCALE = 1e-9

#: linprog statuses that are genuine verdicts (success / infeasible /
#: unbounded) rather than numerical accidents (1 = iteration limit,
#: 4 = numerical difficulties)
_DEFINITIVE_STATUSES = (0, 2, 3)


@dataclass
class LPSolution:
    assignment: Dict[str, float]
    objective_values: List[float]
    #: extra solver attempts spent in the numerical-failure fallback
    #: chain (0 on the happy path) — surfaced as a diagnostic
    fallbacks: int = 0

    def __getitem__(self, name: str) -> float:
        return self.assignment.get(name, 0.0)

    def value(self, expr: LinExpr) -> float:
        return expr.evaluate(self.assignment)


def _run_linprog(c, A_ub, b_ub, A_eq, b_eq, n, bounds=None, method="highs"):
    if bounds is None:
        bounds = [(0, None)] * n
    if faultinject.fault_point(faultinject.LP_FAIL, method):
        return OptimizeResult(
            status=4,
            message=f"injected numerical failure ({method})",
            fun=None,
            x=None,
        )
    kwargs = dict(bounds=bounds, method=method)
    A_ub_s = csr_matrix(A_ub) if A_ub.size else None
    A_eq_s = csr_matrix(A_eq) if A_eq.size else None
    return linprog(
        c,
        A_ub=A_ub_s,
        b_ub=b_ub if A_ub_s is not None else None,
        A_eq=A_eq_s,
        b_eq=b_eq if A_eq_s is not None else None,
        **kwargs,
    )


def _solve_robust(c, A_ub, b_ub, A_eq, b_eq, n, bounds, context=""):
    """One LP solve with the numerical-failure fallback chain.

    Returns ``(result, extra_attempts)`` where ``result`` has a
    definitive status; raises :class:`LPError` when every fallback still
    reports a numerical failure, so callers can cleanly separate
    "genuinely infeasible" (status 2 → :class:`InfeasibleError`) from
    "the solver gave up" (:class:`LPError`).
    """
    result = None
    attempts = 0
    for method in FALLBACK_METHODS:
        result = _run_linprog(c, A_ub, b_ub, A_eq, b_eq, n, bounds=bounds, method=method)
        attempts += 1
        if result.status in _DEFINITIVE_STATUSES:
            return result, attempts - 1
    if A_ub.size:
        # last resort: loosen the inequality RHS by a deterministic hair —
        # strictly enlarges the feasible region, so a feasible problem
        # stays feasible and the optimum moves by O(1e-9)
        b_loose = b_ub + PERTURB_SCALE * (1.0 + np.abs(b_ub))
        result = _run_linprog(c, A_ub, b_loose, A_eq, b_eq, n, bounds=bounds, method="highs")
        attempts += 1
        if result.status in _DEFINITIVE_STATUSES:
            return result, attempts - 1
    raise LPError(
        f"LP solver failure after {attempts} attempt(s)"
        f"{': ' + context if context else ''} ({result.message})"
    )


def solve_lexicographic(
    problem: LPProblem,
    objectives: Sequence[LinExpr],
    context: str = "",
    pinned: Optional[Dict[str, float]] = None,
    pin_slack: float = 1e-7,
) -> LPSolution:
    """Minimize each objective in order, pinning earlier optima.

    ``pinned`` fixes named variables to values via their bounds (used by the
    per-posterior-sample LPs of Hybrid BayesWC/BayesPC, Eq. 6.5); a small
    ``pin_slack`` keeps sampled points numerically feasible.

    Raises :class:`InfeasibleError` when the feasible region is empty and
    :class:`LPError` for solver-level failures (e.g. unbounded objectives).
    """
    if not objectives:
        objectives = [LinExpr()]
    for objective in objectives:
        problem.declare_expr(objective)
    with telemetry.span("lp.solve", context=context, objectives=len(objectives)) as tspan:
        A_ub, b_ub, A_eq, b_eq, index = problem.to_matrices()
        n = len(index)
        bounds = [(0.0, None)] * n
        if pinned:
            for name, value in pinned.items():
                if name not in index:
                    continue
                lo = max(0.0, float(value) - pin_slack)
                hi = float(value) + pin_slack
                bounds[index[name]] = (lo, hi)
        objective_values: List[float] = []
        result = None
        fallbacks = 0
        iterations = 0

        ub_rows = [A_ub] if A_ub.size else []
        ub_rhs = [b_ub] if b_ub.size else []

        tspan.set(variables=n, constraints=int(A_ub.shape[0]) + int(A_eq.shape[0]))
        for stage, objective in enumerate(objectives):
            c = np.zeros(n)
            for name, coef in objective.coeffs.items():
                c[index[name]] += coef
            A_cur = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
            b_cur = np.concatenate(ub_rhs) if ub_rhs else np.zeros(0)
            result, extra = _solve_robust(c, A_cur, b_cur, A_eq, b_eq, n, bounds, context)
            fallbacks += extra
            iterations += int(getattr(result, "nit", 0) or 0)
            if result.status == 2:
                _lp_counters(n, iterations, fallbacks, infeasible=True)
                raise InfeasibleError(
                    f"infeasible linear program{': ' + context if context else ''}"
                )
            if result.status == 3:
                _lp_counters(n, iterations, fallbacks)
                raise LPError(
                    f"unbounded objective at stage {stage}{': ' + context if context else ''}"
                )
            stage_opt = float(result.fun) + objective.const
            objective_values.append(stage_opt)
            if stage < len(objectives) - 1:
                # pin: objective <= opt (+ small slack for numerical robustness)
                slack = STAGE_TOLERANCE * max(1.0, abs(stage_opt))
                row = np.zeros(n)
                for name, coef in objective.coeffs.items():
                    row[index[name]] += coef
                ub_rows.append(row.reshape(1, -1))
                ub_rhs.append(np.array([stage_opt - objective.const + slack]))

        assert result is not None
        tspan.set(iterations=iterations, fallbacks=fallbacks)
        _lp_counters(n, iterations, fallbacks)
        assignment = {name: float(result.x[col]) for name, col in index.items()}
        return LPSolution(assignment, objective_values, fallbacks=fallbacks)


def _lp_counters(variables: int, iterations: int, fallbacks: int, infeasible: bool = False) -> None:
    """Per-solve counter batch (one flag test each when telemetry is off)."""
    telemetry.counter("lp.solves", 1)
    telemetry.counter("lp.variables", variables)
    if iterations:
        telemetry.counter("lp.iterations", iterations)
    if fallbacks:
        telemetry.counter("lp.fallbacks", fallbacks)
    if infeasible:
        telemetry.counter("lp.infeasible", 1)


def solve_min(
    problem: LPProblem,
    objective: LinExpr,
    context: str = "",
    pinned: Optional[Dict[str, float]] = None,
) -> LPSolution:
    """Single-objective convenience wrapper."""
    return solve_lexicographic(problem, [objective], context, pinned=pinned)


def feasible_point(problem: LPProblem, context: str = "") -> Optional[Dict[str, float]]:
    """A feasible point of the problem, or None when infeasible."""
    try:
        solution = solve_min(problem, LinExpr(), context)
    except InfeasibleError:
        return None
    return solution.assignment
