"""Open-loop load generator for the bound-inference daemon.

Replays the benchmark suite as synthetic traffic: arrivals follow a
seeded Poisson process at ``--rate`` requests/second, and every arrival
fires on schedule whether or not earlier requests have completed (open
loop — the generator never backs off, so daemon overload shows up as
429s and latency, not as a silently throttled workload).  Each request
long-polls ``POST /analyze?wait=1`` to a terminal state and is
classified into an error taxonomy::

    done | done_degraded | cached | error | timeout | cancelled
         | rate_limited | shed | rejected | draining | incomplete
         | transport_error | rejected-lint | budget-exceeded
         | resource-limit | quota-shed

Latency percentiles (p50/p95/p99, nearest-rank) plus the taxonomy and a
final ``/healthz`` snapshot are written atomically to
``BENCH_server.json``.  ``--check`` turns the soak invariants into an
exit code: every scheduled request must reach a terminal response
(nothing dropped, no transport errors), which is what the CI soak job
asserts while chaos faults are active in the daemon.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import ReproError

#: taxonomy classes that mean "the daemon gave this request a terminal
#: answer" — the soak invariant is that every request lands in one
TERMINAL_CLASSES = frozenset(
    {
        "done",
        "done_degraded",
        "cached",
        "error",
        "timeout",
        "cancelled",
        "rate_limited",
        "shed",
        "rejected",
        "draining",
        # hostile/source-mode taxonomy: admission gate, execution budgets,
        # guarded analysis, and tenant quotas are all terminal answers
        "rejected-lint",
        "budget-exceeded",
        "resource-limit",
        "quota-shed",
    }
)

DEFAULT_BENCHMARKS = ("MapAppend", "Concat")
DEFAULT_METHODS = ("bayespc", "bayeswc", "opt")


@dataclass
class LoadgenConfig:
    url: str = "http://127.0.0.1:8787"
    requests: int = 50
    rate: float = 10.0  # mean arrivals/second (open loop)
    seed: int = 0
    benchmarks: Tuple[str, ...] = DEFAULT_BENCHMARKS
    methods: Tuple[str, ...] = DEFAULT_METHODS
    samples: int = 10
    seeds: int = 2  # distinct request seeds (small pool ⇒ cache hits)
    wait_timeout: float = 120.0
    client: str = "loadgen"
    out: Optional[str] = "BENCH_server.json"
    check: bool = False
    #: directory of hostile/ad-hoc programs mixed in as source submissions
    hostile_dir: Optional[str] = None
    hostile_fraction: float = 0.25
    api_key: Optional[str] = None


@dataclass
class Sample:
    index: int
    offset: float
    klass: str = "incomplete"
    status: int = 0
    latency: Optional[float] = None
    request_id: Optional[str] = None
    detail: Optional[str] = None
    body: Dict[str, Any] = field(default_factory=dict)


def _classify(status: int, doc: Dict[str, Any]) -> str:
    if status in (200, 202):
        state = doc.get("state")
        if state == "done":
            # the guarded analyzer reports an LP over budget as a verdict
            # (ok=True, status "resource-limit"), not a failure
            verdict = ((doc.get("result") or {}).get("verdict") or {})
            if verdict.get("status") == "resource-limit":
                return "resource-limit"
            if doc.get("cache_hit"):
                return "cached"
            if doc.get("degraded"):
                return "done_degraded"
            return "done"
        if state == "error":
            # worker-side budget classification: an aborted hostile run is
            # its own bucket, not an undifferentiated "error"
            stage = ((doc.get("result") or {}).get("failure") or {}).get("stage")
            if stage == "eval-budget":
                return "budget-exceeded"
            if stage == "resource-limit":
                return "resource-limit"
            return "error"
        if state in ("timeout", "cancelled"):
            return str(state)
        return "incomplete"
    if status == 429:
        code = str(doc.get("error", {}).get("code", ""))
        if code == "quota-exceeded":
            return "quota-shed"
        if code == "rate-limited":
            return "rate_limited"
        message = str(doc.get("error", {}).get("message", ""))
        return "rate_limited" if "rate" in message else "shed"
    if status == 422:
        return "rejected-lint"
    if status == 400:
        return "rejected"
    if status == 503:
        return "draining"
    return f"http_{status}"


def _fire(
    base: str,
    sample: Sample,
    wait_timeout: float,
    client: str,
    api_key: Optional[str] = None,
) -> None:
    split = urlsplit(base)
    started = time.monotonic()
    try:
        conn = http.client.HTTPConnection(
            split.hostname, split.port or 80, timeout=wait_timeout + 30.0
        )
        try:
            headers = {"Content-Type": "application/json", "X-Client": client}
            if api_key:
                headers["X-Api-Key"] = api_key
            conn.request(
                "POST",
                f"/analyze?wait=1&timeout={wait_timeout:g}",
                body=json.dumps(sample.body),
                headers=headers,
            )
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        sample.latency = time.monotonic() - started
        sample.status = response.status
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {}
        sample.request_id = doc.get("id")
        sample.klass = _classify(response.status, doc)
        if sample.klass in ("error", "timeout"):
            sample.detail = doc.get("error")
    except Exception as exc:
        sample.latency = time.monotonic() - started
        sample.klass = "transport_error"
        sample.detail = f"{type(exc).__name__}: {exc}"


def load_hostile_corpus(directory: str) -> List[Tuple[str, str]]:
    """``(name, source)`` for every program file in a hostile corpus dir."""
    corpus: List[Tuple[str, str]] = []
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path) or not name.endswith((".raml", ".ml")):
            continue
        with open(path, "r") as handle:
            corpus.append((name, handle.read()))
    if not corpus:
        raise ReproError(f"no .raml/.ml programs found in {directory}")
    return corpus


def build_plan(config: LoadgenConfig) -> List[Sample]:
    """The deterministic arrival schedule: (offset, request body) pairs.

    With ``hostile_dir`` set, roughly ``hostile_fraction`` of arrivals
    submit a corpus program as raw ``source`` instead of a registry
    benchmark name — the same admission gate, budgets, and quota path a
    hostile tenant would exercise.
    """
    rng = random.Random(config.seed)
    corpus = load_hostile_corpus(config.hostile_dir) if config.hostile_dir else []
    plan: List[Sample] = []
    offset = 0.0
    for index in range(config.requests):
        if config.rate > 0:
            offset += rng.expovariate(config.rate)
        if corpus and rng.random() < config.hostile_fraction:
            name, source = rng.choice(corpus)
            body = {
                "source": source,
                "method": rng.choice(list(config.methods)),
                "mode": "data-driven",
                "samples": config.samples,
                "seed": rng.randrange(max(1, config.seeds)),
                "client": config.client,
            }
        else:
            body = {
                "benchmark": rng.choice(list(config.benchmarks)),
                "method": rng.choice(list(config.methods)),
                "mode": "data-driven",
                "samples": config.samples,
                "seed": rng.randrange(max(1, config.seeds)),
                "client": config.client,
            }
        plan.append(Sample(index=index, offset=offset, body=body))
    return plan


def percentile(latencies: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile (no interpolation, no numpy needed)."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    rank = max(1, min(len(ordered), int(round(fraction * len(ordered) + 0.5))))
    return ordered[rank - 1]


def _healthz(base: str) -> Optional[Dict[str, Any]]:
    split = urlsplit(base)
    try:
        conn = http.client.HTTPConnection(split.hostname, split.port or 80, timeout=10.0)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            return json.loads(response.read())
        finally:
            conn.close()
    except Exception:
        return None


def run_loadgen(config: LoadgenConfig) -> Dict[str, Any]:
    """Run the open-loop replay; returns (and optionally writes) the report."""
    plan = build_plan(config)
    start = time.monotonic()
    threads: List[threading.Thread] = []

    def _scheduled(sample: Sample) -> None:
        delay = sample.offset - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        _fire(config.url, sample, config.wait_timeout, config.client, config.api_key)

    for sample in plan:
        thread = threading.Thread(target=_scheduled, args=(sample,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start

    taxonomy: Dict[str, int] = {}
    for sample in plan:
        taxonomy[sample.klass] = taxonomy.get(sample.klass, 0) + 1
    latencies = [s.latency for s in plan if s.latency is not None]
    report = {
        "version": 1,
        "config": {
            "url": config.url,
            "requests": config.requests,
            "rate": config.rate,
            "seed": config.seed,
            "benchmarks": list(config.benchmarks),
            "methods": list(config.methods),
            "samples": config.samples,
            "seeds": config.seeds,
            "hostile_dir": config.hostile_dir,
            "hostile_fraction": config.hostile_fraction if config.hostile_dir else 0.0,
        },
        "wall_seconds": round(wall, 3),
        "achieved_rps": round(config.requests / wall, 3) if wall > 0 else None,
        "taxonomy": dict(sorted(taxonomy.items())),
        "latency_seconds": {
            "count": len(latencies),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "max": max(latencies) if latencies else None,
        },
        "healthz": _healthz(config.url),
        "failures": [
            {"index": s.index, "class": s.klass, "detail": s.detail}
            for s in plan
            if s.klass in ("transport_error", "incomplete")
        ],
    }
    if config.out:
        _write_atomic(config.out, report)
    if config.check:
        check_invariants(report)
    return report


def check_invariants(report: Dict[str, Any]) -> None:
    """The soak invariants: raise :class:`ReproError` when violated."""
    taxonomy = report["taxonomy"]
    total = sum(taxonomy.values())
    expected = report["config"]["requests"]
    problems = []
    if total != expected:
        problems.append(f"{expected - total} request(s) unaccounted for")
    non_terminal = {
        klass: count for klass, count in taxonomy.items() if klass not in TERMINAL_CLASSES
    }
    if non_terminal:
        problems.append(f"non-terminal responses: {non_terminal}")
    if problems:
        raise ReproError("soak invariants violated: " + "; ".join(problems))


def _write_atomic(path: str, report: Dict[str, Any]) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=os.path.basename(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
