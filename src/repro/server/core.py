"""The daemon core: admission → queue → supervised pool → terminal state.

Sans-io by design: :class:`ServerCore` knows nothing about HTTP.  The
asyncio front end (:mod:`repro.server.app`) calls :meth:`submit` /
:meth:`get` / :meth:`healthz` / :meth:`stop`; tests drive the core
directly without a socket in sight.

Admission order is deliberate::

    parse/validate → cache lookup → rate limit → degrade → bounded queue

The cache lookup comes *before* the rate limiter: a cache hit costs one
dict read and one journal append, so serving it never endangers the
daemon — "serve cache hits always" is the bottom rung of graceful
degradation, available even to clients that would otherwise be shed.
Because the daemon maps requests onto the exact
:class:`~repro.evalharness.runner.EvalTask` the batch harness builds,
those hits are byte-identical to ``bench`` results for the same cell.

Every admitted request is journalled (write-ahead, same
:class:`~repro.evalharness.journal.RunJournal` machinery as ``bench``):
``request-admitted`` before it can run, ``request-finish`` with the
terminal state, and ``request-cancelled`` with ``resumable: true`` for
anything a shutdown drain could not resolve — so no admitted request
can silently vanish, even across a daemon restart.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..config import ExecutionBudget
from ..evalharness.journal import RunJournal, new_run_id
from ..evalharness.runner import ResultCache
from .admission import (
    BoundedPriorityQueue,
    CircuitBreaker,
    QueueFull,
    TenantQuotas,
    TokenBucketTable,
)
from .model import AnalyzeSpec, LintRejection, RequestRecord, SpecError, WorkItem
from .pool import PoolSupervisor


class AdmissionError(Exception):
    """A request the daemon refuses (rendered as an HTTP error).

    ``code`` is the machine-readable refusal class carried in the JSON
    error body (``auth-failed``, ``rate-limited``, ``quota-exceeded``,
    ``queue-full``, ``draining``).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        code: str = "admission",
    ):
        self.status = int(status)
        self.retry_after = retry_after
        self.code = code
        super().__init__(message)


@dataclass(frozen=True)
class ServerConfig:
    """Daemon knobs; every one has a CLI flag in ``hybrid-aara serve``."""

    host: str = "127.0.0.1"
    port: int = 8787
    jobs: int = 2
    queue_capacity: int = 16
    rate: float = 20.0  # tokens/second per client (<= 0 disables)
    burst: float = 40.0
    default_deadline: float = 120.0
    max_samples: int = 500
    latency_budget: float = 10.0  # sampler-stage budget feeding the breaker
    breaker_window: int = 8
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    max_retries: int = 2
    backoff_seconds: float = 0.05
    shutdown_grace: float = 10.0
    health_interval: float = 30.0
    cache_dir: Optional[str] = None
    runs_dir: str = "runs"
    max_records: int = 4096
    #: (api-key, tenant) pairs; empty disables auth (everyone is "public")
    api_keys: tuple = ()
    quota_concurrency: int = 0  # per-tenant in-flight cap (<= 0 disables)
    quota_cpu_seconds: float = 0.0  # per-tenant cpu budget per window
    quota_window: float = 60.0
    #: execution budget applied to ad-hoc source submissions; None means
    #: the untrusted defaults (ExecutionBudget.untrusted())
    budget: Optional[ExecutionBudget] = None


class ServerCore:
    """Ties admission, the pool, the cache, the journal and telemetry
    together; one instance per daemon process."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.started_at = time.time()
        self.run_id = f"server-{new_run_id()}"
        self.cache = ResultCache(config.cache_dir) if config.cache_dir else None
        self.queue = BoundedPriorityQueue(config.queue_capacity)
        self.buckets = TokenBucketTable(config.rate, config.burst)
        self.breaker = CircuitBreaker(
            latency_budget=config.latency_budget,
            window=config.breaker_window,
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
        )
        self.quotas = TenantQuotas(
            max_concurrent=config.quota_concurrency,
            cpu_seconds=config.quota_cpu_seconds,
            window=config.quota_window,
        )
        self.api_keys: Dict[str, str] = dict(config.api_keys)
        self.budget = config.budget if config.budget is not None else ExecutionBudget.untrusted()
        self.supervisor = PoolSupervisor(
            jobs=config.jobs,
            queue=self.queue,
            on_start=self._on_start,
            on_done=self._on_done,
            on_fail=self._on_fail,
            max_retries=config.max_retries,
            backoff_seconds=config.backoff_seconds,
            health_interval=config.health_interval,
        )
        self.journal: Optional[RunJournal] = None
        self._records: "OrderedDict[str, RequestRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._seq = 0
        self._draining = False
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "cache_hits": 0,
            "degraded": 0,
            "rate_limited": 0,
            "shed": 0,
            "done": 0,
            "error": 0,
            "timeout": 0,
            "cancelled": 0,
            "source_requests": 0,
            "incremental_hits": 0,
            "rejected_lint": 0,
            "quota_shed": 0,
            "auth_failed": 0,
            "budget_exceeded": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        run_dir = os.path.join(self.config.runs_dir, self.run_id)
        self.journal = RunJournal(run_dir, run_id=self.run_id)
        self.journal.record(
            {
                "ev": "server-start",
                "run_id": self.run_id,
                "ts": time.time(),
                "config": {
                    "jobs": self.config.jobs,
                    "queue_capacity": self.config.queue_capacity,
                    "rate": self.config.rate,
                    "latency_budget": self.config.latency_budget,
                },
            }
        )
        self.supervisor.start()

    def stop(self, grace: Optional[float] = None) -> Dict[str, int]:
        """Drain in-flight requests within the grace window, cancel the
        rest as resumable, close the journal.  Idempotent."""
        grace = self.config.shutdown_grace if grace is None else grace
        with self._lock:
            if self._draining:
                grace = 0.0
            self._draining = True
        for item in self.queue.drain():
            self._cancel(item, "shutdown before execution")
        leftovers = self.supervisor.drain(grace)
        for item in leftovers:
            self._cancel(item, "shutdown grace window expired")
        # anything raced into the queue after the first drain pass
        for item in self.queue.drain():
            self._cancel(item, "shutdown before execution")
        stats = {
            "cancelled": self.counters["cancelled"],
            "resolved": self.counters["done"]
            + self.counters["error"]
            + self.counters["timeout"],
        }
        if self.journal is not None:
            self.journal.record(
                {"ev": "server-stop", "ts": time.time(), "stats": stats}
            )
            self.journal.close()
            self.journal = None
        return stats

    def _cancel(self, item: WorkItem, reason: str) -> None:
        if self.journal is not None:
            self.journal.record(
                {
                    "ev": "request-cancelled",
                    "id": item.request_id,
                    "ts": time.time(),
                    "reason": reason,
                    "resumable": True,
                    "task": item.task.task_id,
                }
            )
        record = self.get(item.request_id)
        if record is not None:
            record.finish("cancelled", error=f"cancelled: {reason}", reason=reason)
        self.quotas.release(item.tenant)
        self.counters["cancelled"] += 1

    # -- admission ----------------------------------------------------------

    def _new_record(self, spec: AnalyzeSpec) -> RequestRecord:
        with self._lock:
            self._seq += 1
            request_id = f"r{self._seq:06d}-{os.urandom(3).hex()}"
            record = RequestRecord(request_id, spec)
            self._records[request_id] = record
            while len(self._records) > self.config.max_records:
                # evict the oldest *terminal* record; never a live one
                for key in list(self._records):
                    if self._records[key].terminal():
                        del self._records[key]
                        break
                else:
                    break
        return record

    def get(self, request_id: str) -> Optional[RequestRecord]:
        with self._lock:
            return self._records.get(request_id)

    def _tenant_of(self, api_key: Optional[str]) -> str:
        """Resolve the tenant; 401 when auth is on and the key is bad."""
        if not self.api_keys:
            return "public"
        if not api_key or api_key not in self.api_keys:
            self.counters["auth_failed"] += 1
            telemetry.counter("server.auth_failed", 1)
            raise AdmissionError(
                401,
                "missing or unknown API key (send X-Api-Key)",
                code="auth-failed",
            )
        return self.api_keys[api_key]

    def submit(
        self, body: Dict[str, Any], client: str, api_key: Optional[str] = None
    ) -> RequestRecord:
        """Admit one request; raises :class:`SpecError` (400),
        :class:`~repro.server.model.LintRejection` (422), or
        :class:`AdmissionError` (401/429/503)."""
        if self._draining:
            raise AdmissionError(503, "daemon is draining", retry_after=None, code="draining")
        tenant = self._tenant_of(api_key)
        try:
            spec = AnalyzeSpec.from_json(
                body,
                client=client,
                default_deadline=self.config.default_deadline,
                max_samples=self.config.max_samples,
                tenant=tenant,
                budget=self.budget,
            )
        except LintRejection:
            self.counters["rejected_lint"] += 1
            telemetry.counter("server.rejected_lint", 1)
            raise
        if spec.source is not None:
            self.counters["source_requests"] += 1
        record = self._new_record(spec)

        # 1. cache: a hit is served unconditionally — no token, no queue
        #    slot, byte-identical to the batch harness's outcome
        if self.cache is not None:
            cached = self.cache.load(spec.task())
            if cached is not None:
                record.cache_hit = True
                self.counters["cache_hits"] += 1
                telemetry.counter("server.cache_hits", 1)
                self._journal_admit(record, cached=True)
                self._finish_from_outcome(record, cached, cache_hit=True)
                return record

        # 1b. incremental fast path: ad-hoc conventional requests consult
        #     the per-function artifact store (populated by `lint --watch`
        #     and `lsp` sessions sharing this cache directory) before
        #     paying for a token or a queue slot.  Lookup only — never an
        #     LP solve — and the synthesized outcome is NOT written back
        #     to the task cache, so the batch path stays canonical.
        if (
            self.cache is not None
            and spec.source is not None
            and spec.method == "conventional"
        ):
            verdict = self._peek_incremental(spec)
            if verdict is not None:
                task = spec.task()
                outcome = {
                    "task": task.task_id,
                    "kind": task.kind,
                    "benchmark": task.benchmark,
                    "mode": task.mode,
                    "method": task.method,
                    "seed": task.seed,
                    "ok": True,
                    "outcome": "ok",
                    "error": None,
                    "failure": None,
                    "result": None,
                    "verdict": verdict,
                    "metrics": {
                        "wall_seconds": 0.0,
                        "max_rss_kb": 0,
                        "pid": os.getpid(),
                        "incremental": True,
                    },
                }
                record.cache_hit = True
                self.counters["incremental_hits"] += 1
                telemetry.counter("server.incremental_hits", 1)
                self._journal_admit(record, cached=True)
                self._finish_from_outcome(record, outcome, cache_hit=True)
                return record

        # 2. per-client rate limit
        allowed, retry_after = self.buckets.acquire(spec.client)
        if not allowed:
            self.counters["rate_limited"] += 1
            telemetry.counter("server.rate_limited", 1, client=spec.client)
            record.finish("error", error="rate-limited", reason="rate-limited")
            raise AdmissionError(
                429, "rate limit exceeded", retry_after=retry_after, code="rate-limited"
            )

        # 3. per-tenant quotas (concurrency + cpu-second window); released
        #    at every terminal state, charged post-hoc in _on_done/_on_fail
        allowed, quota_reason, retry_after = self.quotas.acquire(spec.tenant)
        if not allowed:
            self.counters["quota_shed"] += 1
            telemetry.counter("server.quota_shed", 1, tenant=spec.tenant)
            record.finish("error", error=quota_reason, reason="quota-shed")
            raise AdmissionError(
                429, f"quota exceeded: {quota_reason}", retry_after=retry_after,
                code="quota-exceeded",
            )

        # 4. degradation ladder (breaker state at admission time)
        effective, reason = self.breaker.degrade(spec.method)
        if reason is not None:
            record.mark_degraded(effective, reason)
            self.counters["degraded"] += 1
            telemetry.counter("server.degraded", 1, level=self.breaker.level())
            if self.cache is not None:
                # a hit for the *fallback* method still beats recomputing
                cached = self.cache.load(spec.task(effective))
                if cached is not None:
                    self.quotas.release(spec.tenant)
                    record.cache_hit = True
                    self.counters["cache_hits"] += 1
                    self._journal_admit(record, cached=True)
                    self._finish_from_outcome(record, cached, cache_hit=True)
                    return record

        # 5. bounded queue: full ⇒ shed with an honest Retry-After
        budget = min(spec.deadline_seconds, self.config.default_deadline * 10)
        item = WorkItem(
            request_id=record.id,
            task=spec.task(effective),
            deadline=time.monotonic() + budget,
            priority=spec.priority,
            tenant=spec.tenant,
            budget_seconds=budget,
        )
        # write-ahead: the admit record must be durable before the item can
        # possibly reach a worker — a crash after this line leaves a
        # journalled request, never an untracked one
        self._journal_admit(record, cached=False)
        try:
            depth = self.queue.put(item, priority=spec.priority)
        except QueueFull as exc:
            self.quotas.release(spec.tenant)
            self.counters["shed"] += 1
            telemetry.counter("server.shed", 1)
            self._journal_finish(record.id, "shed", error="queue full")
            record.finish("error", error="queue full", reason="shed")
            raise AdmissionError(
                429, "queue full", retry_after=exc.retry_after, code="queue-full"
            )
        self.counters["admitted"] += 1
        telemetry.counter("server.admitted", 1)
        record.add_event("queued", depth=depth, served_method=effective)
        return record

    def _peek_incremental(self, spec) -> Optional[Dict[str, Any]]:
        """A warm per-function verdict for this source, or ``None``.

        Any failure (unparseable source, unsliceable program, artifact
        directory trouble) falls through to the normal queue path —
        the fast path may only ever make a request cheaper, never break
        it."""
        from ..analysis.incremental import ArtifactStore, peek_conventional_verdict

        try:
            store = ArtifactStore(self.config.cache_dir)
            return peek_conventional_verdict(
                store, spec.source, spec.entry, budget=self.budget
            )
        except Exception:
            return None

    def _journal_admit(self, record: RequestRecord, cached: bool) -> None:
        if self.journal is None:
            return
        event = {
            "ev": "request-admitted",
            "id": record.id,
            "ts": time.time(),
            "request": record.spec.to_json(),
            "served_method": record.served_method,
            "cached": cached,
        }
        if record.spec.source is not None:
            # the budgets this request ran under are part of its record:
            # a replayed journal must know why a run was aborted
            event["budget"] = dataclasses.asdict(self.budget)
        self.journal.record(event)

    def _journal_finish(self, request_id: str, state: str, **detail: Any) -> None:
        if self.journal is None:
            return
        self.journal.record(
            {
                "ev": "request-finish",
                "id": request_id,
                "ts": time.time(),
                "state": state,
                **detail,
            }
        )

    # -- supervisor callbacks (pool thread) ---------------------------------

    def _on_start(self, item: WorkItem) -> None:
        record = self.get(item.request_id)
        if record is not None:
            record.start_attempt(item.attempts)
        if self.journal is not None:
            self.journal.record(
                {
                    "ev": "request-start",
                    "id": item.request_id,
                    "ts": time.time(),
                    "attempt": item.attempts,
                    "task": item.task.task_id,
                }
            )

    def _sampler_latency(self, outcome: Dict[str, Any]) -> float:
        metrics = outcome.get("metrics") or {}
        stages = metrics.get("stages") or {}
        if "sampler" in stages:
            return float(stages["sampler"])
        return float(metrics.get("wall_seconds", 0.0))

    def _feed_breaker(self, item: WorkItem, outcome: Dict[str, Any]) -> None:
        if item.task.method not in ("bayeswc", "bayespc"):
            return
        failure = outcome.get("failure") or {}
        sampler_ok = outcome.get("ok", False) or failure.get("stage") != "sampler"
        self.breaker.record(self._sampler_latency(outcome), sampler_ok)

    def _finish_from_outcome(
        self, record: RequestRecord, outcome: Dict[str, Any], cache_hit: bool = False
    ) -> None:
        if outcome.get("ok"):
            record.finish("done", outcome=outcome, cache_hit=cache_hit)
            self.counters["done"] += 1
        else:
            record.finish(
                "error",
                outcome=outcome,
                error=outcome.get("error"),
                cache_hit=cache_hit,
            )
            self.counters["error"] += 1

    def _on_done(self, item: WorkItem, outcome: Dict[str, Any]) -> None:
        outcome.setdefault("metrics", {})["attempts"] = item.attempts
        # post-hoc quota accounting: bill the worker wall-clock actually
        # burned, then free the tenant's concurrency slot
        wall = float((outcome.get("metrics") or {}).get("wall_seconds") or 0.0)
        self.quotas.charge(item.tenant, wall)
        self.quotas.release(item.tenant)
        failure = outcome.get("failure") or {}
        if failure.get("stage") in ("eval-budget", "resource-limit"):
            self.counters["budget_exceeded"] += 1
            telemetry.counter("server.budget_exceeded", 1, stage=failure.get("stage"))
        self._feed_breaker(item, outcome)
        if self.cache is not None and outcome.get("ok"):
            # same store path (and fault-injection points) as the batch
            # harness; a torn/bitflipped entry quarantines on next load
            self.cache.store(item.task, outcome)
        # write-ahead: the terminal record is durable before the waiter
        # wakes, so a client that reads the journal right after its HTTP
        # response always finds the finish event
        self._journal_finish(
            item.request_id,
            "done" if outcome.get("ok") else "error",
            attempts=item.attempts,
            task=item.task.task_id,
        )
        record = self.get(item.request_id)
        if record is not None:
            self._finish_from_outcome(record, outcome)

    def _on_fail(self, item: WorkItem, kind: str, message: str) -> None:
        # a timeout burned its whole deadline budget in a worker; bill it
        self.quotas.charge(
            item.tenant, item.budget_seconds if kind == "timeout" else 0.0
        )
        self.quotas.release(item.tenant)
        if kind == "timeout":
            # a hung sampler breaching its deadline is breaker evidence too
            if item.task.method in ("bayeswc", "bayespc"):
                self.breaker.record(self.config.latency_budget + 1.0, False)
            self.counters["timeout"] += 1
        else:
            self.counters["error"] += 1
        telemetry.counter("server.request_failures", 1, kind=kind)
        self._journal_finish(
            item.request_id,
            "timeout" if kind == "timeout" else "error",
            error=message,
            attempts=item.attempts,
            task=item.task.task_id,
        )
        record = self.get(item.request_id)
        if record is not None:
            record.finish(
                "timeout" if kind == "timeout" else "error",
                error=message,
                failure_kind=kind,
                attempts=item.attempts,
            )

    # -- observability ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        with self._lock:
            live = sum(1 for r in self._records.values() if not r.terminal())
        return {
            "status": "draining" if self._draining else "ok",
            "run_id": self.run_id,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": self.config.jobs,
            "queue_depth": len(self.queue),
            "queue_capacity": self.config.queue_capacity,
            "in_flight": self.supervisor.busy(),
            "live_requests": live,
            "breaker": self.breaker.snapshot(),
            "quotas": self.quotas.snapshot(),
            "budget": dataclasses.asdict(self.budget),
            "auth": {"enabled": bool(self.api_keys), "tenants": sorted(set(self.api_keys.values()))},
            "pool": {
                "replacements": self.supervisor.pool_replacements,
                "probe_failures": self.supervisor.probe_failures,
            },
            "counters": dict(self.counters),
        }
