"""The asyncio HTTP front end for the bound-inference daemon.

Three routes over :mod:`repro.server.httpio` framing:

* ``POST /analyze`` — admit a request (a registry ``benchmark`` name,
  or untrusted ``source`` analyzed under the daemon's execution
  budget).  Returns 200 with the full record for synchronous
  completions (cache hits, or ``?wait=1`` long-polls), 202 with the
  request id otherwise, 400 for malformed specs, 401 when API keys are
  enforced and the ``X-Api-Key`` header is missing/unknown, 422 with
  lint diagnostics when submitted source fails the admission gate,
  429 + ``Retry-After`` when rate-limited, over tenant quota, or shed,
  503 while draining.
* ``GET /status/<id>`` — the request record; ``?wait=1`` long-polls
  until terminal, ``?stream=1`` streams progress events as NDJSON.
* ``GET /healthz`` — daemon health: queue depth, in-flight count,
  circuit-breaker state, pool replacement counters.

Shutdown mirrors the batch harness: the first SIGTERM/SIGINT stops
accepting connections and drains in-flight requests within the grace
window, then the process exits **75** (``EX_TEMPFAIL`` — interrupted,
partial results journalled); a second signal abandons the grace window
immediately (unresolved requests are journalled as resumable).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from typing import Optional

from .. import telemetry
from ..errors import EXIT_INTERRUPTED
from ..telemetry.console import get_console
from .core import AdmissionError, ServerConfig, ServerCore
from .httpio import (
    ProtocolError,
    Request,
    error_body,
    read_request,
    response_bytes,
    retry_after_headers,
    stream_head,
)
from .model import LintRejection, RequestRecord, SpecError

#: default long-poll bound for ``?wait=1`` (seconds)
WAIT_TIMEOUT = 60.0


class ServerApp:
    """One daemon process: a :class:`ServerCore` behind asyncio sockets."""

    def __init__(self, core: ServerCore):
        self.core = core
        self.host = core.config.host
        self.port = core.config.port  # replaced by the bound port on start
        self._stop = asyncio.Event()
        self._signals = 0

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Programmatic clean stop (tests); exits 0, not 75."""
        self._stop.set()

    def _on_signal(self, signame: str) -> None:
        self._signals += 1
        if self._signals == 1:
            get_console().warn(
                f"{signame}: draining in-flight requests "
                f"(grace {self.core.config.shutdown_grace:g}s; signal again to abandon)"
            )
            self._stop.set()
        else:
            get_console().warn(f"second {signame}: abandoning in-flight requests")
            self.core.supervisor.interrupt()
            self._stop.set()

    async def run(self) -> int:
        """Serve until stopped; returns the process exit code."""
        telemetry.ensure_from_env()
        self.core.start()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        # Deliberately NOT loop.add_signal_handler: that installs a
        # set_wakeup_fd self-pipe which fork-started pool workers inherit,
        # so a SIGTERM delivered to a worker (concurrent.futures's
        # broken-pool cleanup terminates survivors) would be relayed into
        # the parent's pipe and dispatched as a phantom parent shutdown.
        # worker_init() detaches the fd, but a worker signalled before its
        # initializer runs still hits the window — a plain handler that
        # pid-guards at delivery time closes it for good.
        parent_pid = os.getpid()

        def _handler(signum, _frame):
            if os.getpid() != parent_pid:
                # forked worker, signalled before worker_init() could
                # reset dispositions: take the default death, touch
                # nothing shared with the parent
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)
                return
            name = signal.Signals(signum).name
            loop.call_soon_threadsafe(self._on_signal, name)

        with contextlib.suppress(ValueError, OSError, RuntimeError):
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, _handler)
        # machine-readable readiness line (tests and the loadgen parse it)
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": self.host,
                    "port": self.port,
                    "run_id": self.core.run_id,
                }
            ),
            flush=True,
        )
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            grace = 0.0 if self._signals > 1 else None
            stats = await asyncio.to_thread(self.core.stop, grace)
            get_console().warn(
                f"daemon stopped: {stats['resolved']} resolved, "
                f"{stats['cancelled']} cancelled (journalled as resumable)"
            )
        return EXIT_INTERRUPTED if self._signals else 0

    # -- connection handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), timeout=30.0)
            except asyncio.TimeoutError:
                writer.write(response_bytes(408, error_body(408, "request timed out")))
                return
            except ProtocolError as exc:
                writer.write(response_bytes(exc.status, error_body(exc.status, str(exc))))
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # a handler bug must not kill the daemon
            telemetry.counter("server.internal_errors", 1, error=type(exc).__name__)
            with contextlib.suppress(Exception):
                writer.write(
                    response_bytes(500, error_body(500, f"{type(exc).__name__}: {exc}"))
                )
        finally:
            with contextlib.suppress(Exception):
                writer.write_eof()
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(self, request: Request, writer: asyncio.StreamWriter) -> None:
        if request.path == "/healthz" and request.method == "GET":
            writer.write(response_bytes(200, self.core.healthz()))
            return
        if request.path == "/analyze":
            if request.method != "POST":
                writer.write(response_bytes(405, error_body(405, "use POST /analyze")))
                return
            await self._analyze(request, writer)
            return
        if request.path.startswith("/status/") and request.method == "GET":
            await self._status(request, writer)
            return
        writer.write(response_bytes(404, error_body(404, f"no route {request.path}")))

    def _client_of(self, request: Request, writer: asyncio.StreamWriter) -> str:
        explicit = request.headers.get("x-client")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "anonymous"

    async def _analyze(self, request: Request, writer: asyncio.StreamWriter) -> None:
        client = self._client_of(request, writer)
        api_key = request.headers.get("x-api-key")
        try:
            body = request.json()
            record = await asyncio.to_thread(self.core.submit, body, client, api_key)
        except ProtocolError as exc:
            writer.write(
                response_bytes(
                    exc.status, error_body(exc.status, str(exc), code="protocol")
                )
            )
            return
        except SpecError as exc:
            writer.write(response_bytes(400, error_body(400, str(exc), code="bad-spec")))
            return
        except LintRejection as exc:
            writer.write(
                response_bytes(
                    422,
                    error_body(
                        422,
                        str(exc),
                        code="rejected-lint",
                        diagnostics=exc.diagnostics,
                    ),
                )
            )
            return
        except AdmissionError as exc:
            writer.write(
                response_bytes(
                    exc.status,
                    error_body(
                        exc.status,
                        str(exc),
                        code=exc.code,
                        retry_after=exc.retry_after,
                    ),
                    headers=retry_after_headers(exc.retry_after),
                )
            )
            return
        if request.query.get("wait"):
            timeout = _float(request.query.get("timeout"), WAIT_TIMEOUT)
            await self._await_terminal(record, timeout)
        status = 200 if record.terminal() else 202
        writer.write(response_bytes(status, record.to_json()))

    async def _status(self, request: Request, writer: asyncio.StreamWriter) -> None:
        request_id = request.path[len("/status/") :]
        record = self.core.get(request_id)
        if record is None:
            writer.write(
                response_bytes(404, error_body(404, f"unknown request {request_id!r}"))
            )
            return
        if request.query.get("stream"):
            await self._stream(record, writer)
            return
        if request.query.get("wait"):
            timeout = _float(request.query.get("timeout"), WAIT_TIMEOUT)
            await self._await_terminal(record, timeout)
        writer.write(response_bytes(200, record.to_json()))

    # -- record waiting / streaming ----------------------------------------

    async def _next_event(self, record: RequestRecord, timeout: float) -> None:
        """Wait until the record emits any event (or the timeout lapses)."""
        loop = asyncio.get_running_loop()
        woke = asyncio.Event()
        record.add_waiter(lambda: loop.call_soon_threadsafe(woke.set))
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(woke.wait(), timeout=timeout)

    async def _await_terminal(self, record: RequestRecord, timeout: float) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while not record.terminal():
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            await self._next_event(record, min(remaining, 1.0))

    async def _stream(self, record: RequestRecord, writer: asyncio.StreamWriter) -> None:
        """NDJSON progress stream: every record event as its own line,
        closed with a final full-record summary line."""
        writer.write(stream_head())
        await writer.drain()
        cursor = 0
        while True:
            doc = record.to_json(include_result=False, since_event=cursor)
            for event in doc["events"]:
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
                cursor += 1
            await writer.drain()
            if doc["state"] in ("done", "error", "timeout", "cancelled"):
                break
            await self._next_event(record, 1.0)
        writer.write(
            (json.dumps(record.to_json(), sort_keys=True) + "\n").encode()
        )
        await writer.drain()


def _float(raw: Optional[str], default: float) -> float:
    try:
        return float(raw) if raw is not None else default
    except ValueError:
        return default


def serve(config: ServerConfig) -> int:
    """Blocking entry point used by ``hybrid-aara serve``."""
    core = ServerCore(config)
    app = ServerApp(core)
    try:
        return asyncio.run(app.run())
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
