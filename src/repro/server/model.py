"""Request model for the bound-inference daemon.

:class:`AnalyzeSpec` validates a ``POST /analyze`` body and maps it onto
the *same* :class:`~repro.evalharness.runner.EvalTask` the batch harness
would build for that cell.  That mapping is the server's correctness
anchor: the content-addressed cache key, the derived sampler seed, and
the worker-side execution path are all shared with ``bench``, so a bound
served for ``(benchmark, mode, method, samples, seed)`` is byte-identical
to the batch harness's result for the same cell — cache hit or not.

:class:`RequestRecord` is the per-request state machine::

    queued -> running -> done | error | timeout
    queued ----------------------------> cancelled   (shutdown drain)

Terminal states are never left; every transition appends a timestamped
event so ``GET /status/<id>`` can stream progress.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..config import AnalysisConfig, ExecutionBudget
from ..evalharness.adhoc import adhoc_name, match_registry_source, normalize_source
from ..evalharness.runner import EvalTask, METHODS, MODES

#: request states with no further transitions
TERMINAL_STATES = frozenset({"done", "error", "timeout", "cancelled"})

#: methods a request may ask for ("conventional" = static AARA only)
REQUEST_METHODS = tuple(METHODS) + ("conventional",)

_MAX_SAMPLES = 500
_MAX_PRIORITY = 9
_MAX_DEGREE = 4


class SpecError(ValueError):
    """A malformed /analyze body (rendered as HTTP 400)."""


class LintRejection(Exception):
    """Submitted source failed the admission lint gate (HTTP 422).

    Carries the full diagnostics document (the same JSON shape
    ``hybrid-aara lint --format json`` emits) so the response body tells
    the submitter exactly what to fix, caret positions included.
    """

    def __init__(self, message: str, diagnostics: List[Dict[str, Any]]):
        self.diagnostics = diagnostics
        super().__init__(message)


def _field(body: Dict[str, Any], key: str, kind, default):
    value = body.get(key, default)
    if value is None:
        return None
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise SpecError(f"field {key!r} must be {kind.__name__}, got {value!r}")


@dataclass(frozen=True)
class AnalyzeSpec:
    """A validated analysis request (immutable; crosses threads freely)."""

    benchmark: str
    method: str  # opt | bayeswc | bayespc | conventional
    mode: str  # data-driven | hybrid
    samples: int
    seed: int
    priority: int
    deadline_seconds: float
    client: str
    #: ad-hoc source submission (normalized); None on the benchmark path
    source: Optional[str] = None
    entry: Optional[str] = None
    degree: Optional[int] = None
    tenant: str = "public"
    budget: Optional[ExecutionBudget] = None

    @classmethod
    def from_json(
        cls,
        body: Dict[str, Any],
        client: str,
        default_deadline: float,
        max_samples: int = _MAX_SAMPLES,
        tenant: str = "public",
        budget: Optional[ExecutionBudget] = None,
    ) -> "AnalyzeSpec":
        if not isinstance(body, dict):
            raise SpecError("request body must be a JSON object")
        method = str(body.get("method", "bayespc")).lower()
        if method not in REQUEST_METHODS:
            raise SpecError(
                f"unknown method {method!r} (one of {', '.join(REQUEST_METHODS)})"
            )
        mode = str(body.get("mode", "data-driven")).lower()
        if mode not in MODES:
            raise SpecError(f"unknown mode {mode!r} (one of {', '.join(MODES)})")
        benchmark = body.get("benchmark")
        raw_source = body.get("source")
        source = entry = None
        degree = None
        if raw_source is not None:
            if benchmark:
                raise SpecError("provide 'benchmark' or 'source', not both")
            source, entry, degree, benchmark = cls._validate_source(
                raw_source, body, mode, budget
            )
        else:
            if not benchmark or not isinstance(benchmark, str):
                raise SpecError("field 'benchmark' (registry name) or 'source' is required")
            from ..suite import get_benchmark

            try:
                spec = get_benchmark(benchmark)
            except Exception:
                raise SpecError(f"unknown benchmark {benchmark!r}")
            if mode == "hybrid" and spec.hybrid_source is None:
                raise SpecError(f"benchmark {benchmark!r} has no hybrid variant")
        samples = _field(body, "samples", int, 25)
        if not 1 <= samples <= max_samples:
            raise SpecError(f"field 'samples' must be in [1, {max_samples}]")
        seed = _field(body, "seed", int, 0)
        priority = _field(body, "priority", int, 5)
        if not 0 <= priority <= _MAX_PRIORITY:
            raise SpecError(f"field 'priority' must be in [0, {_MAX_PRIORITY}]")
        deadline = _field(body, "deadline_seconds", float, default_deadline)
        if deadline <= 0:
            raise SpecError("field 'deadline_seconds' must be positive")
        client = str(body.get("client") or client or "anonymous")
        return cls(
            benchmark=benchmark,
            method=method,
            mode=mode,
            samples=samples,
            seed=seed,
            priority=priority,
            deadline_seconds=deadline,
            client=client,
            source=source,
            entry=entry,
            degree=degree,
            tenant=tenant,
            budget=budget,
        )

    @staticmethod
    def _validate_source(
        raw_source: Any,
        body: Dict[str, Any],
        mode: str,
        budget: Optional[ExecutionBudget],
    ):
        """Admit ad-hoc source: lint gate, then registry re-routing.

        Returns ``(source, entry, degree, benchmark)``; ``source`` is
        ``None`` when the normalized submission is byte-identical to a
        registry benchmark's variant — the request is re-routed onto the
        benchmark-name path so it shares that cell's task id, cache
        entry, and byte-identical bounds.
        """
        from ..analysis.diagnostics import to_json as diagnostics_json
        from ..analysis.engine import lint_source

        if not isinstance(raw_source, str) or not raw_source.strip():
            raise SpecError("field 'source' must be a non-empty program string")
        entry = body.get("entry")
        if entry is not None and (not isinstance(entry, str) or not entry):
            raise SpecError("field 'entry' must be a function name")
        degree = _field(body, "degree", int, None)
        if degree is not None and not 1 <= degree <= _MAX_DEGREE:
            raise SpecError(f"field 'degree' must be in [1, {_MAX_DEGREE}]")
        result = lint_source(raw_source, path="<request>", entry=entry, budget=budget)
        # boundability predictions (R042/R043) are the analyzer's verdict
        # to make, exactly as in the batch harness's lint guard — the
        # data-driven methods can still measure such programs
        errors = [d for d in result.errors() if d.code not in ("R042", "R043")]
        if errors:
            doc = diagnostics_json(errors)
            raise LintRejection(
                f"source rejected by lint: {len(errors)} error(s), "
                f"first: [{errors[0].code}] {errors[0].message}",
                diagnostics=doc["diagnostics"],
            )
        matched = match_registry_source(raw_source, mode)
        if matched is not None:
            benchmark, registry_entry = matched
            if entry is None or entry == registry_entry:
                return None, None, degree, benchmark
        if mode == "hybrid":
            raise SpecError(
                "mode 'hybrid' requires a registry benchmark "
                "(ad-hoc source is analyzed data-driven)"
            )
        return normalize_source(raw_source), entry, degree, adhoc_name(raw_source)

    def config(self) -> AnalysisConfig:
        # the same base config `bench --samples N --seed S` builds, so the
        # cache key and derived seeds match the batch harness exactly.
        # Budgets apply only to ad-hoc source (registry programs are
        # trusted) and never enter the cache signature.
        return AnalysisConfig(
            num_posterior_samples=self.samples,
            seed=self.seed,
            budget=self.budget if self.source is not None else None,
        )

    def task(self, method: Optional[str] = None) -> EvalTask:
        """The batch-harness task for this request (``method`` overrides
        the requested one — the degradation ladder's hook)."""
        method = method or self.method
        if method == "conventional":
            return EvalTask(
                kind="conventional",
                benchmark=self.benchmark,
                root_seed=self.seed,
                config=self.config(),
                source=self.source,
                entry=self.entry,
            )
        return EvalTask(
            kind="analysis",
            benchmark=self.benchmark,
            root_seed=self.seed,
            config=self.config(),
            mode=self.mode,
            method=method,
            source=self.source,
            entry=self.entry,
            degree=self.degree,
        )

    def to_json(self) -> Dict[str, Any]:
        doc = {
            "benchmark": self.benchmark,
            "method": self.method,
            "mode": self.mode,
            "samples": self.samples,
            "seed": self.seed,
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "client": self.client,
            "tenant": self.tenant,
        }
        if self.source is not None:
            # the digest, not the source: journals stay compact and the
            # benchmark name (user:<sha12>) is already content-addressed
            doc["entry"] = self.entry
            doc["degree"] = self.degree
            doc["source_chars"] = len(self.source)
        return doc


@dataclass
class WorkItem:
    """What actually crosses into the supervisor (and the pool)."""

    request_id: str
    task: EvalTask
    deadline: float  # absolute monotonic deadline (admission time + budget)
    priority: int
    attempts: int = 0
    tenant: str = "public"
    budget_seconds: float = 0.0  # the deadline budget (billed on timeout)


class RequestRecord:
    """One request's observable state; thread-safe, asyncio-friendly.

    The daemon core (supervisor thread) mutates records; HTTP handlers
    (event loop) read them and wait on transitions.  Every mutation
    appends an event and wakes registered waiters via their own loop's
    ``call_soon_threadsafe``, so status streams see changes promptly
    without polling the record under a lock.
    """

    def __init__(self, request_id: str, spec: AnalyzeSpec):
        self.id = request_id
        self.spec = spec
        self.state = "queued"
        self.served_method = spec.method
        self.degraded: Optional[Dict[str, str]] = None
        self.cache_hit = False
        self.attempts = 0
        self.created_ts = time.time()
        self.finished_ts: Optional[float] = None
        self.outcome: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._waiters: List[Callable[[], None]] = []
        self.add_event("admitted", client=spec.client, method=spec.method)

    # -- mutation (supervisor/core side) ------------------------------------

    def add_event(self, kind: str, **detail: Any) -> None:
        with self._lock:
            self.events.append({"ev": kind, "ts": time.time(), **detail})
            waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake()

    def mark_degraded(self, served: str, reason: str) -> None:
        with self._lock:
            self.served_method = served
            self.degraded = {
                "requested": self.spec.method,
                "served": served,
                "reason": reason,
            }
        self.add_event("degraded", requested=self.spec.method, served=served, reason=reason)

    def start_attempt(self, attempt: int) -> None:
        with self._lock:
            self.state = "running"
            self.attempts = attempt
        self.add_event("started", attempt=attempt)

    def finish(
        self,
        state: str,
        outcome: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        **detail: Any,
    ) -> None:
        assert state in TERMINAL_STATES, state
        with self._lock:
            if self.state in TERMINAL_STATES:  # terminal states are sticky
                return
            self.state = state
            self.outcome = outcome
            self.error = error
            self.finished_ts = time.time()
        self.add_event("finished", state=state, **detail)

    # -- observation (HTTP side) --------------------------------------------

    def terminal(self) -> bool:
        with self._lock:
            return self.state in TERMINAL_STATES

    def add_waiter(self, wake: Callable[[], None]) -> None:
        """Register a one-shot wakeup for the next event; fires immediately
        if the record is already terminal (no missed-update race)."""
        with self._lock:
            if self.state not in TERMINAL_STATES:
                self._waiters.append(wake)
                return
        wake()

    def latency_seconds(self) -> Optional[float]:
        with self._lock:
            if self.finished_ts is None:
                return None
            return self.finished_ts - self.created_ts

    def to_json(self, include_result: bool = True, since_event: int = 0) -> Dict[str, Any]:
        with self._lock:
            doc: Dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "request": self.spec.to_json(),
                "served_method": self.served_method,
                "degraded": self.degraded,
                "cache_hit": self.cache_hit,
                "attempts": self.attempts,
                "created_ts": self.created_ts,
                "finished_ts": self.finished_ts,
                "events": list(self.events[since_event:]),
            }
            if self.finished_ts is not None:
                doc["latency_seconds"] = round(self.finished_ts - self.created_ts, 6)
            if self.error is not None:
                doc["error"] = self.error
            if include_result and self.outcome is not None:
                doc["result"] = {
                    key: self.outcome.get(key)
                    for key in ("task", "kind", "ok", "outcome", "result", "verdict", "failure")
                }
            return doc
