"""Bound-inference daemon: serve AARA/Bayesian analysis over HTTP.

The batch harness (:mod:`repro.evalharness`) runs the paper's grid once
and exits; this package keeps the same pipeline resident behind an
asyncio HTTP/JSON API so many concurrent clients can request bounds:

* :mod:`repro.server.admission` — token-bucket rate limiting, a bounded
  priority queue with explicit load shedding, and the circuit breaker
  that drives the degradation ladder (BayesPC → BayesWC → conventional);
* :mod:`repro.server.model` — request validation, the request record
  state machine, and the mapping onto :class:`~repro.evalharness.runner.
  EvalTask` that makes served bounds byte-identical to the batch harness
  (and lets the daemon share its content-addressed result cache);
* :mod:`repro.server.work` — the worker-side entry point (crosses the
  process pool);
* :mod:`repro.server.pool` — the supervised ``ProcessPoolExecutor``:
  deadline watchdog, kill-and-replace, innocent-request resubmission,
  worker health pings;
* :mod:`repro.server.core` — the sans-io daemon core tying admission,
  pool, journal, cache, breaker and telemetry together;
* :mod:`repro.server.app` — the asyncio HTTP front end (``POST
  /analyze``, ``GET /status/<id>``, ``GET /healthz``) and graceful
  SIGTERM drain (exit 75, like ``bench``);
* :mod:`repro.server.loadgen` — an open-loop load generator that replays
  the benchmark suite as synthetic traffic and records latency
  percentiles + an error taxonomy to ``BENCH_server.json``.

Everything is stdlib + numpy/scipy, like the rest of the repo.
"""

from .admission import BoundedPriorityQueue, CircuitBreaker, TokenBucketTable
from .core import AdmissionError, ServerConfig, ServerCore
from .model import AnalyzeSpec, RequestRecord, TERMINAL_STATES

__all__ = [
    "AdmissionError",
    "AnalyzeSpec",
    "BoundedPriorityQueue",
    "CircuitBreaker",
    "RequestRecord",
    "ServerConfig",
    "ServerCore",
    "TERMINAL_STATES",
    "TokenBucketTable",
]
