"""The daemon's supervised worker pool.

A single supervisor thread owns a ``ProcessPoolExecutor`` and is the
only thing that touches it.  It pulls admitted work items off the
bounded queue, enforces each request's absolute deadline, and keeps the
pool healthy:

* a worker that **crashes** breaks the pool — the supervisor replaces
  it, charges the crashed request one attempt (retried with the shared
  deterministic backoff from :mod:`repro.backoff`), and resubmits every
  *innocent* in-flight request without burning one of its attempts;
* a worker that **hangs** past a request's deadline cannot be cancelled
  individually, so the whole pool is killed and replaced; the overdue
  request is failed with a ``timeout`` terminal and the innocents are
  resubmitted for free (the same policy as the batch runner's
  watchdog);
* after an idle stretch the supervisor sends a **health probe**
  (:func:`repro.server.work.health_probe`) through the pool; a probe
  that fails or stalls means the pool is wedged, and it is replaced
  before real traffic is routed into it.

The supervisor never sleeps on a retry: backoff delays are tracked as
eligibility timestamps so one crashing request cannot stall the rest of
the pool.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

from .. import backoff, telemetry
from . import work
from .model import WorkItem


class PoolSupervisor:
    """Owns the process pool; runs in its own thread.

    Callbacks (all invoked from the supervisor thread):

    * ``on_start(item)`` — an attempt is about to run in a worker;
    * ``on_done(item, outcome)`` — the worker returned an outcome dict
      (which may itself record an analysis error — that is a *result*,
      not a supervisor failure);
    * ``on_fail(item, kind, message)`` — terminal supervisor-side
      failure, ``kind`` in ``{"timeout", "crash"}``.
    """

    def __init__(
        self,
        jobs: int,
        queue,
        on_start: Callable[[WorkItem], None],
        on_done: Callable[[WorkItem, dict], None],
        on_fail: Callable[[WorkItem, str, str], None],
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        health_interval: float = 30.0,
        probe_timeout: float = 10.0,
        task_fn: Callable = work.execute_request,
    ):
        self.jobs = max(1, int(jobs))
        self.queue = queue
        self.on_start = on_start
        self.on_done = on_done
        self.on_fail = on_fail
        self.max_retries = max(0, int(max_retries))
        self.backoff_seconds = float(backoff_seconds)
        self.health_interval = float(health_interval)
        self.probe_timeout = float(probe_timeout)
        self.task_fn = task_fn
        self._lock = threading.Lock()
        self._inflight: Dict[Future, WorkItem] = {}
        self._delayed: List[Tuple[float, WorkItem]] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._stop = threading.Event()  # stop pulling new work (drain)
        self._abandon = threading.Event()  # stop now, abandon in-flight
        self._thread: Optional[threading.Thread] = None
        self._last_probe = time.monotonic()
        self._probe_token = 0
        self.pool_replacements = 0
        self.probe_failures = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="pool-supervisor", daemon=True
        )
        self._thread.start()

    def busy(self) -> int:
        with self._lock:
            return len(self._inflight) + len(self._delayed)

    def drain(self, grace: float) -> List[WorkItem]:
        """Stop pulling new work; give in-flight (and retrying) requests
        ``grace`` seconds to resolve; abandon and return the rest."""
        self._stop.set()
        deadline = time.monotonic() + max(0.0, grace)
        while (
            time.monotonic() < deadline
            and self.busy()
            and not self._abandon.is_set()  # a second signal cuts the drain short
        ):
            time.sleep(0.05)
        return self.abandon()

    def interrupt(self) -> None:
        """Signal-safe immediate-stop request (second SIGTERM/SIGINT):
        makes an in-progress :meth:`drain` give up its grace window."""
        self._stop.set()
        self._abandon.set()

    def abandon(self) -> List[WorkItem]:
        """Kill the pool immediately; returns the unresolved items."""
        self._stop.set()
        self._abandon.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._inflight.values())
            leftovers.extend(item for _ts, item in self._delayed)
            self._inflight.clear()
            self._delayed.clear()
        self._kill_executor()
        return leftovers

    # -- executor plumbing --------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=work.worker_init
            )
        return self._executor

    def _kill_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _replace_pool(self, reason: str) -> None:
        self._kill_executor()
        self.pool_replacements += 1
        telemetry.counter("server.pool_replaced", 1, reason=reason)

    # -- the supervisor loop ------------------------------------------------

    def _free_slots(self) -> int:
        with self._lock:
            return self.jobs - len(self._inflight)

    def _submit(self, item: WorkItem) -> None:
        now = time.monotonic()
        if now >= item.deadline:
            self.on_fail(item, "timeout", "deadline expired before execution")
            return
        item.attempts += 1
        self.on_start(item)
        try:
            future = self._ensure_executor().submit(self.task_fn, item.task)
        except Exception as exc:  # pool broken at submit time: replace, retry
            self._replace_pool("submit-failed")
            item.attempts -= 1
            self._schedule_retry(item, charged=False)
            telemetry.counter("server.submit_failures", 1, error=type(exc).__name__)
            return
        with self._lock:
            self._inflight[future] = item

    def _schedule_retry(self, item: WorkItem, charged: bool = True) -> None:
        """Queue ``item`` for re-execution after the shared deterministic
        backoff (charged retries) or immediately (innocent resubmits)."""
        delay = 0.0
        if charged:
            delay = backoff.backoff_delay(
                self.backoff_seconds, item.attempts, seed=item.task.seed
            )
        with self._lock:
            self._delayed.append((time.monotonic() + delay, item))

    def _handle_failure(self, item: WorkItem, exc: BaseException) -> None:
        if item.attempts > self.max_retries:
            self.on_fail(
                item,
                "crash",
                f"worker died after {item.attempts} attempt(s): "
                f"{type(exc).__name__}: {exc}",
            )
        else:
            telemetry.counter("server.worker_retries", 1, request=item.request_id)
            self._schedule_retry(item, charged=True)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        with self._lock:
            overdue = {
                future: item
                for future, item in self._inflight.items()
                if item.deadline <= now
            }
            if not overdue:
                return
            innocents = [
                item for future, item in self._inflight.items() if future not in overdue
            ]
            self._inflight.clear()
        # a hung worker can't be cancelled individually — replace the pool
        self._replace_pool("deadline")
        for item in overdue.values():
            telemetry.counter("server.worker_timeouts", 1, request=item.request_id)
            self.on_fail(
                item, "timeout", "request exceeded its deadline in a worker"
            )
        for item in innocents:
            item.attempts = max(0, item.attempts - 1)  # not their fault
            self._submit(item)

    def _maybe_probe(self) -> None:
        """Health-check an idle pool; replace it if the probe stalls."""
        if self._executor is None:
            return
        now = time.monotonic()
        if now - self._last_probe < self.health_interval:
            return
        self._last_probe = now
        self._probe_token += 1
        try:
            future = self._executor.submit(work.health_probe, self._probe_token)
        except Exception:
            self.probe_failures += 1
            self._replace_pool("probe-submit-failed")
            return
        deadline = now + self.probe_timeout
        while time.monotonic() < deadline and not self._abandon.is_set():
            try:
                reply = future.result(timeout=0.1)
            except TimeoutError:
                continue
            except Exception:
                break
            if reply.get("token") == self._probe_token:
                telemetry.counter("server.pool_probes", 1, ok=True)
                return
            break
        self.probe_failures += 1
        telemetry.counter("server.pool_probes", 1, ok=False)
        self._replace_pool("probe-failed")

    def _loop(self) -> None:
        while not self._abandon.is_set():
            now = time.monotonic()
            with self._lock:
                ready = [item for ts, item in self._delayed if ts <= now]
                self._delayed = [(ts, item) for ts, item in self._delayed if ts > now]
            for item in ready:
                self._submit(item)
            while not self._stop.is_set() and self._free_slots() > 0:
                item = self.queue.pop(timeout=0)
                if item is None:
                    break
                self._submit(item)
            with self._lock:
                inflight = set(self._inflight)
                idle = not self._inflight and not self._delayed
            if not inflight:
                if self._stop.is_set():
                    if idle:
                        break
                    time.sleep(0.02)  # delayed retries pending
                    continue
                self._maybe_probe()
                item = self.queue.pop(timeout=0.1)
                if item is not None:
                    self._submit(item)
                continue
            timeout = 0.2
            with self._lock:
                nearest = min(
                    (item.deadline for item in self._inflight.values()), default=None
                )
            if nearest is not None:
                timeout = min(timeout, max(0.0, nearest - time.monotonic()))
            done, _not_done = wait(inflight, timeout=timeout, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                with self._lock:
                    item = self._inflight.pop(future, None)
                if item is None:
                    continue
                try:
                    outcome = future.result()
                except Exception as exc:
                    # execute_request records analysis errors *inside* the
                    # outcome; a raising future means the worker itself died
                    broken = True
                    self._handle_failure(item, exc)
                else:
                    self.on_done(item, outcome)
            if broken:
                # a dead worker poisons the whole executor: every other
                # in-flight future will fail with BrokenProcessPool through
                # no fault of its own — resubmit them without charging
                with self._lock:
                    innocents = list(self._inflight.values())
                    self._inflight.clear()
                self._replace_pool("worker-crash")
                for item in innocents:
                    item.attempts = max(0, item.attempts - 1)
                    self._schedule_retry(item, charged=False)
                continue
            self._enforce_deadlines()
