"""Admission control for the bound-inference daemon.

Three independent mechanisms, each a small deterministic class with an
injectable clock so chaos tests can drive them without sleeping:

* :class:`TokenBucketTable` — per-client token buckets.  A client that
  exceeds its sustained rate gets ``429`` with an honest ``Retry-After``
  telling it when the next token lands.
* :class:`BoundedPriorityQueue` — the only queue between admission and
  the worker pool.  It is *bounded* on purpose: when the daemon is
  saturated, new work is shed explicitly at the front door (429) instead
  of accumulating latency invisibly.  Lower priority numbers dequeue
  first; FIFO within a priority class.
* :class:`CircuitBreaker` — watches the sampler stage.  When recent
  requests breach their latency budget (or fail in the sampler), the
  breaker trips and the daemon *degrades* instead of queueing doomed
  work: BayesPC requests are served with BayesWC, and at the second trip
  level every sampler method falls back to the conventional/Opt path
  (LP only, no MCMC).  Responses carry the fallback honestly
  (``degraded: {requested, served, reason}``) and ``/healthz`` exposes
  the breaker state.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Tuple


class TokenBucket:
    """One client's bucket: ``rate`` tokens/second, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def acquire(self, now: float) -> Tuple[bool, float]:
        """Take one token; returns ``(allowed, retry_after_seconds)``."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:
            return False, 60.0
        return False, (1.0 - self.tokens) / self.rate


class TokenBucketTable:
    """Per-client token buckets with a bounded LRU client table."""

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 1024,
        clock=time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self.clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def acquire(self, client: str) -> Tuple[bool, float]:
        """Take one token for ``client``; ``(allowed, retry_after)``."""
        if self.rate <= 0:  # rate limiting disabled
            return True, 0.0
        now = self.clock()
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket  # re-insert: most recently used
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
            return bucket.acquire(now)


class TenantQuotas:
    """Per-tenant concurrency and cpu-second quotas.

    Two independent limits, both disabled when ``<= 0``:

    * ``max_concurrent`` — in-flight (queued or running) requests per
      tenant.  Acquired at admission, released at every terminal state,
      so a tenant that floods the daemon queues behind itself instead of
      starving everyone else's workers.
    * ``cpu_seconds`` per sliding ``window`` — worker wall-clock charged
      *after* each request finishes (post-hoc accounting: admission is
      optimistic, the bill lands on the next request).  A tenant over
      its window budget is shed with a ``Retry-After`` telling it when
      the oldest charge rolls out of the window.

    The clock is injectable so chaos tests can drive the window without
    sleeping.
    """

    def __init__(
        self,
        max_concurrent: int = 0,
        cpu_seconds: float = 0.0,
        window: float = 60.0,
        clock=time.monotonic,
    ):
        self.max_concurrent = int(max_concurrent)
        self.cpu_seconds = float(cpu_seconds)
        self.window = float(window)
        self.clock = clock
        self._lock = threading.Lock()
        self._in_flight: Dict[str, int] = {}
        #: per-tenant deque of (charge-time, seconds) inside the window
        self._charges: Dict[str, deque] = {}
        self.shed_concurrency = 0
        self.shed_cpu = 0

    def enabled(self) -> bool:
        return self.max_concurrent > 0 or self.cpu_seconds > 0

    def _used_locked(self, tenant: str, now: float) -> float:
        charges = self._charges.get(tenant)
        if not charges:
            return 0.0
        horizon = now - self.window
        while charges and charges[0][0] < horizon:
            charges.popleft()
        if not charges:
            del self._charges[tenant]
            return 0.0
        return sum(seconds for _ts, seconds in charges)

    def acquire(self, tenant: str) -> Tuple[bool, Optional[str], Optional[float]]:
        """Reserve one slot; ``(allowed, reason, retry_after)``.

        ``reason`` carries the quota provenance (which limit, usage vs
        cap) so the 429 body can say *why* the tenant was shed.
        """
        if not self.enabled():
            return True, None, None
        now = self.clock()
        with self._lock:
            live = self._in_flight.get(tenant, 0)
            if self.max_concurrent > 0 and live >= self.max_concurrent:
                self.shed_concurrency += 1
                reason = (
                    f"tenant {tenant!r} concurrency quota: "
                    f"{live}/{self.max_concurrent} in flight"
                )
                return False, reason, 1.0
            if self.cpu_seconds > 0:
                used = self._used_locked(tenant, now)
                if used >= self.cpu_seconds:
                    self.shed_cpu += 1
                    charges = self._charges.get(tenant)
                    retry = (
                        max(1.0, charges[0][0] + self.window - now)
                        if charges
                        else self.window
                    )
                    reason = (
                        f"tenant {tenant!r} cpu quota: {used:.1f}s used of "
                        f"{self.cpu_seconds:g}s per {self.window:g}s window"
                    )
                    return False, reason, retry
            self._in_flight[tenant] = live + 1
            return True, None, None

    def release(self, tenant: str) -> None:
        """Give back one concurrency slot (terminal-state hook)."""
        if not self.enabled():
            return
        with self._lock:
            live = self._in_flight.get(tenant, 0)
            if live <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = live - 1

    def charge(self, tenant: str, seconds: float) -> None:
        """Bill ``seconds`` of worker time against the tenant's window."""
        if self.cpu_seconds <= 0 or seconds <= 0:
            return
        now = self.clock()
        with self._lock:
            self._charges.setdefault(tenant, deque()).append((now, float(seconds)))

    def snapshot(self) -> Dict[str, Any]:
        """State for ``/healthz``."""
        now = self.clock()
        with self._lock:
            tenants = sorted(set(self._in_flight) | set(self._charges))
            return {
                "enabled": self.enabled(),
                "max_concurrent": self.max_concurrent,
                "cpu_seconds": self.cpu_seconds,
                "window_seconds": self.window,
                "shed_concurrency": self.shed_concurrency,
                "shed_cpu": self.shed_cpu,
                "tenants": {
                    tenant: {
                        "in_flight": self._in_flight.get(tenant, 0),
                        "cpu_used_seconds": round(self._used_locked(tenant, now), 3),
                    }
                    for tenant in tenants
                },
            }


class QueueFull(Exception):
    """Raised by :meth:`BoundedPriorityQueue.put` when shedding load."""

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        super().__init__(f"queue full; retry after {retry_after:.1f}s")


class BoundedPriorityQueue:
    """Thread-safe bounded priority queue with explicit load shedding.

    ``put`` never blocks: a full queue raises :class:`QueueFull` carrying
    a ``Retry-After`` estimate (current backlog / recent service rate) so
    shed clients back off for roughly as long as the backlog needs to
    drain, not a magic constant.
    """

    def __init__(self, capacity: int, clock=time.monotonic):
        self.capacity = int(capacity)
        self.clock = clock
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        #: recent (dequeue-time, seconds-per-item) samples for Retry-After
        self._service: deque = deque(maxlen=32)
        self._last_pop: Optional[float] = None

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def put(self, item: Any, priority: int = 5) -> int:
        """Enqueue; returns the queue depth after insert.  Raises
        :class:`QueueFull` when at capacity."""
        with self._cond:
            if len(self._heap) >= self.capacity:
                raise QueueFull(self.retry_after_locked())
            heapq.heappush(self._heap, (int(priority), next(self._seq), item))
            depth = len(self._heap)
            self._cond.notify()
            return depth

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the highest-priority item, or None on timeout."""
        with self._cond:
            if not self._heap and timeout:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            _prio, _seq, item = heapq.heappop(self._heap)
            now = self.clock()
            if self._last_pop is not None:
                self._service.append(now - self._last_pop)
            self._last_pop = now
            return item

    def drain(self) -> List[Any]:
        """Remove and return everything queued (shutdown path)."""
        with self._cond:
            items = [item for _p, _s, item in sorted(self._heap)]
            self._heap.clear()
            return items

    def retry_after_locked(self) -> float:
        """Backlog-drain estimate in seconds (call with the lock held or
        accept a small race — it is advisory)."""
        per_item = (
            sum(self._service) / len(self._service) if self._service else 1.0
        )
        estimate = max(1.0, len(self._heap) * per_item)
        return min(60.0, math.ceil(estimate))


class CircuitBreaker:
    """Sampler-stage circuit breaker driving the degradation ladder.

    Records one sample per completed sampler-method request: the sampler
    stage's latency and whether it succeeded.  A *breach* is a failure or
    a latency over ``latency_budget``.  When at least ``threshold`` of
    the last ``window`` samples are breaches, the breaker trips: the
    degradation level rises one rung (capped at 2) and the sample window
    resets.  Levels decay one rung per ``cooldown`` seconds with no new
    trip — the half-open probe is simply the next undegraded request
    admitted after decay; if it breaches again the breaker re-trips.

    Level 0 (closed)  : serve the requested method.
    Level 1 (open)    : BayesPC → BayesWC.
    Level 2 (open)    : BayesPC/BayesWC → conventional Opt (no sampler).
    """

    MAX_LEVEL = 2

    def __init__(
        self,
        latency_budget: float = 10.0,
        window: int = 8,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ):
        self.latency_budget = float(latency_budget)
        self.window = int(window)
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.clock = clock
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=self.window)
        self._level = 0
        self._changed_at: Optional[float] = None
        self.trips = 0
        self.breaches = 0

    def record(self, sampler_latency: float, ok: bool) -> None:
        """Feed one completed sampler request into the window."""
        breach = (not ok) or sampler_latency > self.latency_budget
        with self._lock:
            self._decay_locked()
            if breach:
                self.breaches += 1
            self._events.append(breach)
            if (
                self._level < self.MAX_LEVEL or breach
            ) and sum(self._events) >= self.threshold:
                self._level = min(self.MAX_LEVEL, self._level + 1)
                self._changed_at = self.clock()
                self._events.clear()
                self.trips += 1

    def _decay_locked(self) -> None:
        if self._level == 0 or self._changed_at is None:
            return
        elapsed = self.clock() - self._changed_at
        while self._level > 0 and elapsed >= self.cooldown:
            self._level -= 1
            elapsed -= self.cooldown
            self._changed_at = self.clock() - elapsed
        if self._level == 0:
            self._changed_at = None

    def level(self) -> int:
        with self._lock:
            self._decay_locked()
            return self._level

    def degrade(self, method: str) -> Tuple[str, Optional[str]]:
        """Effective method for a request, plus the reason when degraded.

        Methods outside the ladder (``opt``, ``conventional``) pass
        through untouched at every level.
        """
        level = self.level()
        if level == 0:
            return method, None
        reason = f"breaker-open:level={level}:sampler-latency-budget={self.latency_budget:g}s"
        if level == 1:
            if method == "bayespc":
                return "bayeswc", reason
            return method, None
        if method in ("bayespc", "bayeswc"):
            return "opt", reason
        return method, None

    def snapshot(self) -> Dict[str, Any]:
        """State for ``/healthz``."""
        with self._lock:
            self._decay_locked()
            return {
                "state": "open" if self._level else "closed",
                "level": self._level,
                "latency_budget_seconds": self.latency_budget,
                "window": self.window,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown,
                "recent_breaches": sum(self._events),
                "total_breaches": self.breaches,
                "trips": self.trips,
            }
