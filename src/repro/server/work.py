"""Worker-side entry points for the daemon's process pool.

Everything here must stay module-level and picklable: it crosses the
``ProcessPoolExecutor`` boundary.  :func:`execute_request` is a thin
shim over the batch harness's :func:`~repro.evalharness.runner.
execute_task` — deliberately so: the daemon's workers run the *same*
code path as ``bench``, with the same telemetry spans, checkpoint
scoping, and fault-injection points (``worker-crash`` / ``worker-hang``
keyed by task id, ``nan-logdensity`` inside the samplers), so chaos
plans written for the batch harness exercise the daemon unchanged.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict

from ..evalharness.runner import EvalTask, execute_task


def worker_init() -> None:
    """Reset signal state a forked worker inherits from the daemon.

    The daemon's asyncio loop installs SIGTERM/SIGINT handlers backed by
    a ``signal.set_wakeup_fd`` self-pipe.  Fork-started workers inherit
    both the handler and the *shared* pipe fd — so a SIGTERM delivered
    to a worker (e.g. ``concurrent.futures``'s broken-pool cleanup calls
    ``p.terminate()`` on the survivors) would write the signal number
    into the parent's wakeup pipe and the parent's loop would dispatch
    its own shutdown handler for a signal it never received.  Detaching
    the wakeup fd and restoring default dispositions confines worker
    signals to the worker.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread / closed fd: nothing to detach
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def execute_request(task: EvalTask) -> Dict[str, Any]:
    """Run one admitted request's task in a pool worker."""
    return execute_task(task)


def health_probe(token: int) -> Dict[str, Any]:
    """A trivial round-trip proving the pool can still schedule work.

    The supervisor submits one of these after an idle period; a probe
    that fails or hangs means the pool is wedged (e.g. every worker
    inherited a corrupted state or died behind our back) and triggers a
    kill-and-replace before real work is routed into it.
    """
    return {"ok": True, "token": token, "pid": os.getpid(), "ts": time.time()}
