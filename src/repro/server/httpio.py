"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The daemon needs exactly three routes and ``Connection: close``
semantics, so this is a deliberately small, strict parser — not a web
framework.  Anything malformed gets a 400 and the connection dropped;
request bodies are capped so a misbehaving client cannot balloon the
daemon's memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: default machine-readable code per status (overridable per error)
_DEFAULT_CODES = {
    400: "bad-request",
    401: "auth-failed",
    404: "not-found",
    405: "method-not-allowed",
    408: "timeout",
    413: "too-large",
    422: "rejected-lint",
    429: "shed",
    500: "internal",
    503: "draining",
}


class ProtocolError(Exception):
    """A malformed request (rendered as 400/413 and connection close)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError:
            raise ProtocolError(400, "request body is not valid JSON")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request head too large")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(400, "bad Content-Length")
        if size > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        if size:
            try:
                body = await reader.readexactly(size)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated request body")
    return Request(
        method=method, path=split.path, query=query, headers=headers, body=body
    )


def response_bytes(
    status: int,
    body: Any = None,
    headers: Optional[Dict[str, str]] = None,
    content_type: str = "application/json",
) -> bytes:
    """One full HTTP/1.1 response (always ``Connection: close``)."""
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    else:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
    head = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + payload


def stream_head(status: int = 200) -> bytes:
    """Response head for a chunked-less NDJSON event stream (the body is
    newline-delimited JSON objects, terminated by connection close)."""
    return (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'OK')}\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Connection: close\r\n\r\n"
    ).encode()


def error_body(
    status: int,
    message: str,
    code: Optional[str] = None,
    diagnostics: Optional[list] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """The structured error body every 4xx/5xx response carries:
    ``{"error": {status, code, message, diagnostics, ...}}``.

    ``code`` is a stable machine-readable class (clients switch on it,
    not on message text); ``diagnostics`` is the lint-engine JSON list
    (empty for errors with no source location).
    """
    return {
        "error": {
            "status": status,
            "code": code or _DEFAULT_CODES.get(status, "error"),
            "message": message,
            "diagnostics": diagnostics or [],
            **extra,
        }
    }


def retry_after_headers(retry_after: Optional[float]) -> Dict[str, str]:
    if retry_after is None:
        return {}
    return {"Retry-After": str(max(1, int(round(retry_after))))}
