"""Analysis configuration (mirrors the paper artifact's config files).

Each analysis run of the prototype takes a program, a list of inputs, and
a configuration: polynomial degree, the data-driven technique, the
probabilistic model's hyperparameters, and sampler settings (Section 7,
"Implementation").  Hyperparameters left at ``None`` are determined by the
empirical-Bayes procedure of Appendix B.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SamplerConfig:
    """HMC settings shared by BayesWC (plain) and BayesPC (reflective)."""

    n_warmup: int = 400
    n_leapfrog: int = 20
    initial_step_size: float = 0.05
    target_accept: float = 0.8
    n_chains: int = 2
    #: sampler for BayesWC's unconstrained posterior: 'hmc' or 'nuts'
    #: (BayesPC always uses reflective HMC, which NUTS does not support)
    algorithm: str = "hmc"


@dataclass(frozen=True)
class BayesWCConfig:
    """Survival model of Eq. (5.12) / Appendix B.1."""

    gamma0: float = 5.0  # prior scale for (β0, β…, σ)
    noise: str = "gumbel"  # 'gumbel' | 'normal' | 'logistic' (ablation knob)
    cost_shift: float = 1.0  # log-model offset so zero costs are supported


@dataclass(frozen=True)
class BayesPCConfig:
    """Constrained polynomial-coefficient model of Eqs. (5.14–5.16) / App. B.2."""

    gamma0: Optional[float] = None  # None => empirical Bayes (Eq. B.5)
    theta0: float = 1.0  # Weibull shape (paper uses 1.0–1.5 per benchmark)
    theta1: Optional[float] = None  # None => empirical Bayes (Eq. B.9)
    nuisance_scale_factor: float = 20.0  # weak prior scale multiplier for ε vars
    #: censoring resolution for the truncation normalizer F(c'): avoids the
    #: integrable density singularity at c' -> 0 for zero-cost observations
    truncation_floor: float = 0.1


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything one analysis run needs besides program + data."""

    degree: int = 1
    num_posterior_samples: int = 100  # the paper's M (1000 in the artifact)
    seed: int = 0
    #: root LP objective after the data-gap stage (Section 6.1): 'sum'
    #: minimizes the sum of the root coefficients, 'degree' minimizes
    #: higher-degree coefficients with higher priority.  The paper's
    #: prototype offers both; 'sum' lets rare extreme observations land in
    #: high-degree coefficients, which is what makes e.g. Hybrid QuickSelect
    #: sound at large sizes.
    objective: str = "sum"
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    bayeswc: BayesWCConfig = field(default_factory=BayesWCConfig)
    bayespc: BayesPCConfig = field(default_factory=BayesPCConfig)
    #: execution knobs for the evaluation harness (never part of the
    #: result-cache key — they cannot change what an analysis computes):
    #: worker processes for the task runner (1 = in-process)
    jobs: int = 1
    #: on-disk result cache directory for the task runner (None = off)
    cache_dir: Optional[str] = None
    #: per-task wall-clock watchdog in seconds (None = no watchdog)
    task_timeout: Optional[float] = None
    #: False aborts the whole run on the first failed cell (--fail-fast)
    keep_going: bool = True

    def with_(self, **kwargs) -> "AnalysisConfig":
        return replace(self, **kwargs)


DEFAULT_CONFIG = AnalysisConfig()
