"""Analysis configuration (mirrors the paper artifact's config files).

Each analysis run of the prototype takes a program, a list of inputs, and
a configuration: polynomial degree, the data-driven technique, the
probabilistic model's hyperparameters, and sampler settings (Section 7,
"Implementation").  Hyperparameters left at ``None`` are determined by the
empirical-Bayes procedure of Appendix B.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SamplerConfig:
    """HMC settings shared by BayesWC (plain) and BayesPC (reflective)."""

    n_warmup: int = 400
    n_leapfrog: int = 20
    initial_step_size: float = 0.05
    target_accept: float = 0.8
    n_chains: int = 2
    #: sampler for BayesWC's unconstrained posterior: 'hmc' or 'nuts'
    #: (BayesPC always uses reflective HMC, which NUTS does not support)
    algorithm: str = "hmc"


@dataclass(frozen=True)
class BayesWCConfig:
    """Survival model of Eq. (5.12) / Appendix B.1."""

    gamma0: float = 5.0  # prior scale for (β0, β…, σ)
    noise: str = "gumbel"  # 'gumbel' | 'normal' | 'logistic' (ablation knob)
    cost_shift: float = 1.0  # log-model offset so zero costs are supported


@dataclass(frozen=True)
class BayesPCConfig:
    """Constrained polynomial-coefficient model of Eqs. (5.14–5.16) / App. B.2."""

    gamma0: Optional[float] = None  # None => empirical Bayes (Eq. B.5)
    theta0: float = 1.0  # Weibull shape (paper uses 1.0–1.5 per benchmark)
    theta1: Optional[float] = None  # None => empirical Bayes (Eq. B.9)
    nuisance_scale_factor: float = 20.0  # weak prior scale multiplier for ε vars
    #: censoring resolution for the truncation normalizer F(c'): avoids the
    #: integrable density singularity at c' -> 0 for zero-cost observations
    truncation_floor: float = 0.1


@dataclass(frozen=True)
class ExecutionBudget:
    """Resource caps for analyzing untrusted program source.

    Every stage that executes or elaborates user source (lexer, parser,
    interpreter, constraint generation, LP) consults its cap; ``None``
    disables that cap (the trusted-suite default).  Budgets can only
    *abort* an analysis — they never change what a successful analysis
    computes — so they are execution knobs, excluded from result-cache
    keys alongside ``jobs``/``task_timeout``.
    """

    #: lexer: maximum source length in characters
    max_source_chars: Optional[int] = None
    #: lexer: maximum number of tokens produced
    max_tokens: Optional[int] = None
    #: parser: maximum expression/pattern nesting depth
    max_nesting_depth: Optional[int] = None
    #: interpreter: maximum eval steps per top-level run (fuel)
    eval_steps: Optional[int] = None
    #: interpreter: maximum user-function call depth
    eval_call_depth: Optional[int] = None
    #: interpreter: maximum constructed value size (list/tuple cells)
    eval_value_size: Optional[int] = None
    #: LP: maximum declared variables
    lp_variables: Optional[int] = None
    #: LP: maximum registered constraints
    lp_constraints: Optional[int] = None

    @classmethod
    def untrusted(cls) -> "ExecutionBudget":
        """Tight defaults for source submitted by unauthenticated tenants.

        Generous enough that every suite benchmark analyzes unchanged
        (verified by the source↔benchmark equivalence tests), tight
        enough that the hostile corpus terminates in well under a second
        per stage.
        """
        return cls(
            max_source_chars=256_000,
            max_tokens=100_000,
            max_nesting_depth=100,
            eval_steps=2_000_000,
            eval_call_depth=10_000,
            eval_value_size=1_000_000,
            lp_variables=200_000,
            lp_constraints=200_000,
        )


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything one analysis run needs besides program + data."""

    degree: int = 1
    num_posterior_samples: int = 100  # the paper's M (1000 in the artifact)
    seed: int = 0
    #: root LP objective after the data-gap stage (Section 6.1): 'sum'
    #: minimizes the sum of the root coefficients, 'degree' minimizes
    #: higher-degree coefficients with higher priority.  The paper's
    #: prototype offers both; 'sum' lets rare extreme observations land in
    #: high-degree coefficients, which is what makes e.g. Hybrid QuickSelect
    #: sound at large sizes.
    objective: str = "sum"
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    bayeswc: BayesWCConfig = field(default_factory=BayesWCConfig)
    bayespc: BayesPCConfig = field(default_factory=BayesPCConfig)
    #: execution knobs for the evaluation harness (never part of the
    #: result-cache key — they cannot change what an analysis computes):
    #: worker processes for the task runner (1 = in-process)
    jobs: int = 1
    #: on-disk result cache directory for the task runner (None = off)
    cache_dir: Optional[str] = None
    #: per-task wall-clock watchdog in seconds (None = no watchdog)
    task_timeout: Optional[float] = None
    #: False aborts the whole run on the first failed cell (--fail-fast)
    keep_going: bool = True
    #: resource caps for untrusted source (None = uncapped trusted path).
    #: An execution knob like the others: budgets abort, never alter, a
    #: successful analysis, and aborted (non-ok) outcomes are never cached.
    budget: Optional[ExecutionBudget] = None

    def with_(self, **kwargs) -> "AnalysisConfig":
        return replace(self, **kwargs)


DEFAULT_CONFIG = AnalysisConfig()
