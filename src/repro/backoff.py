"""Deterministic retry backoff shared by every retry loop in the repo.

Retries happen in three places — the eval runner's task retry loop, the
bound-inference daemon's worker-pool resubmission path, and ad-hoc test
drivers — and all of them need the same two properties:

* **exponential growth** so a persistently failing dependency is not
  hammered, and
* **deterministic, seed-derived jitter** so tasks that failed *together*
  (a killed pool takes every in-flight task with it) retry *fanned out*
  instead of in lockstep, without touching any global RNG state that the
  samplers' golden tests depend on.

The jitter is a SHA-256 hash of ``(seed, "backoff", attempt)`` mapped
into ``[0.5, 1.5)`` — identical across processes, interpreter sessions
and call sites, which is what makes retry schedules reproducible in
chaos tests: the same fault plan yields the same sleep sequence every
run, byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import List


def derive_u63(root_seed: int, *parts: object) -> int:
    """A stable 63-bit integer from ``(root_seed, *parts)``.

    SHA-256 rather than ``hash()`` so the derivation is identical across
    interpreter sessions and worker processes (string hashing is salted
    per-process by PYTHONHASHSEED).  This is the same construction as
    :func:`repro.evalharness.runner.derive_seed`, which delegates here.
    """
    payload = json.dumps([int(root_seed), *[str(p) for p in parts]]).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def jitter(seed: int, attempt: int) -> float:
    """Deterministic jitter factor in ``[0.5, 1.5)`` for one retry."""
    return 0.5 + derive_u63(seed, "backoff", attempt) / 2**63


def backoff_delay(base_seconds: float, attempt: int, seed: int = 0) -> float:
    """The sleep before retry ``attempt`` (1-based): exponential × jitter.

    ``base_seconds <= 0`` disables backoff entirely (returns 0.0), which
    is what tests use to keep retry loops instant.
    """
    if base_seconds <= 0:
        return 0.0
    base = base_seconds * (2 ** (max(attempt, 1) - 1))
    return base * jitter(seed, attempt)


def backoff_schedule(base_seconds: float, attempts: int, seed: int = 0) -> List[float]:
    """The full sleep schedule for ``attempts`` retries (diagnostics/tests)."""
    return [backoff_delay(base_seconds, a, seed) for a in range(1, attempts + 1)]


def sleep_backoff(base_seconds: float, attempt: int, seed: int = 0) -> float:
    """Sleep the schedule's delay for this retry; returns the delay slept."""
    delay = backoff_delay(base_seconds, attempt, seed)
    if delay > 0:
        time.sleep(delay)
    return delay
