"""Function signatures and call-graph structure for AARA type inference.

A :class:`FunSignature` is a resource-annotated arrow type
``<Γ, p0> -> <a, q0>`` whose coefficients are LP expressions.  Recursion is
*resource-monomorphic within an SCC instantiation* but each SCC carries a
chain of **cost-free** signature levels (Hoffmann–Hofmann 2010): a
recursive call at level ℓ may superpose the level-ℓ signature with the
level-(ℓ+1) cost-free signature, which is how e.g. insertion sort obtains
its quadratic bound.  Calls *across* SCCs instantiate a fresh copy of the
callee's derivation, giving full resource polymorphism for non-recursive
calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .annot import AnnType
from ..lang import ast as A
from ..lang.builtins import is_builtin
from ..lp import LinExpr


@dataclass
class FunSignature:
    """Resource-annotated signature ``params; p0 ⊢ f : <result, q0>``."""

    fname: str
    params: Tuple[AnnType, ...]
    p0: LinExpr
    result: AnnType
    q0: LinExpr
    level: int = 0

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        return f"{self.fname}[L{self.level}]: <({ps}); {self.p0}> -> <{self.result}; {self.q0}>"


def call_graph(program: A.Program) -> "nx.DiGraph":
    """Directed graph of calls between top-level functions (builtins excluded)."""
    graph = nx.DiGraph()
    for fdef in program:
        graph.add_node(fdef.name)
    for fdef in program:
        for node in fdef.body.walk():
            if isinstance(node, A.App) and not is_builtin(node.fname) and node.fname in program:
                graph.add_edge(fdef.name, node.fname)
    return graph


def scc_of(program: A.Program) -> Dict[str, frozenset]:
    """Map each function to its strongly-connected component.

    A function is in a non-trivial SCC with itself only if it is actually
    (mutually) recursive; non-recursive functions map to singleton frozen
    sets that are treated as *external* at their call sites.
    """
    graph = call_graph(program)
    mapping: Dict[str, frozenset] = {}
    for component in nx.strongly_connected_components(graph):
        members = frozenset(component)
        for fname in component:
            mapping[fname] = members
    return mapping


def is_self_recursive(program: A.Program, fname: str, sccs: Dict[str, frozenset]) -> bool:
    members = sccs[fname]
    if len(members) > 1:
        return True
    # singleton: recursive iff it calls itself
    for node in program[fname].body.walk():
        if isinstance(node, A.App) and node.fname == fname:
            return True
    return False


def dependency_order(program: A.Program) -> List[str]:
    """Function names in reverse-topological (callee-first) SCC order."""
    graph = call_graph(program)
    condensation = nx.condensation(graph)
    order: List[str] = []
    for scc_id in reversed(list(nx.topological_sort(condensation))):
        order.extend(sorted(condensation.nodes[scc_id]["members"]))
    return order
