"""Automatic ``stat`` placement (paper Section 3.1).

    "The annotation stat can be either manually inserted by the user or
    automatically inserted by walking over the program's source code
    bottom-up to identify functions (or more fine-grained code fragments)
    that cannot be analyzed statically by conventional AARA.  Concretely,
    we first look at the leaves of the program call graph, check if we can
    analyze them using conventional AARA, and then recurse up the call
    graph to identify other problematic functions.  We then insert the
    annotations at all the required points."

:func:`insert_stat_annotations` implements exactly that procedure: it
visits SCCs of the call graph in dependency (callee-first) order, attempts
a conventional AARA analysis of each function *treating already-marked
callees as data-driven*, and wraps every call to a function that remains
unanalyzable in a fresh ``stat`` node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .analyze import build_analysis, solve_analysis
from .annot import make_template
from .signatures import dependency_order, scc_of
from .typecheck import StatSite
from ..errors import InfeasibleError, StaticAnalysisError, UnanalyzableError
from ..lang import ast as A
from ..lang.types import typecheck_program


@dataclass
class AutoStatResult:
    """Outcome of automatic stat placement."""

    program: A.Program
    #: functions conventional AARA could not analyze (bottom-up verdicts)
    unanalyzable: Set[str] = field(default_factory=set)
    #: degree at which each analyzable function first succeeded
    degrees: Dict[str, int] = field(default_factory=dict)
    #: number of stat annotations inserted
    inserted: int = 0

    def stat_labels(self) -> List[str]:
        return self.program.stat_labels()


def _permissive_handler(site: StatSite):
    """A stat handler that grants any judgment — used only to *probe*
    whether the statically-analyzed remainder of a function typechecks."""
    result = make_template(site.result_type, site.degree, site.lp, hint="probe")
    q0 = site.lp.fresh("probe.q0")
    return result, q0


def _function_analyzable(
    program: A.Program, fname: str, degrees: Tuple[int, ...]
) -> Optional[int]:
    """Lowest degree at which conventional AARA types ``fname`` (stat sites
    are granted permissively so only the *static* remainder is tested)."""
    for degree in degrees:
        try:
            analysis = build_analysis(
                program, fname, degree, stat_handler=_permissive_handler
            )
            solve_analysis(analysis)
            return degree
        except (UnanalyzableError, InfeasibleError, StaticAnalysisError):
            continue
    return None


def _wrap_calls(expr: A.Expr, targets: Set[str], fresh: "_LabelSupply") -> Tuple[A.Expr, int]:
    """Wrap every application of a target function in a stat node."""
    count = 0

    def walk(node: A.Expr) -> A.Expr:
        nonlocal count
        if isinstance(node, A.Stat):
            # already data-driven: leave the body untouched
            return node
        if isinstance(node, A.App) and node.fname in targets:
            count += 1
            return A.Stat(fresh.next_label(), node, pos=node.pos)
        return _rebuild(node, walk)

    wrapped = walk(expr)
    return wrapped, count


def _rebuild(node: A.Expr, walk) -> A.Expr:
    if isinstance(node, A.Let):
        return A.Let(node.name, walk(node.bound), walk(node.body), pos=node.pos)
    if isinstance(node, A.Share):
        return A.Share(node.name, node.name1, node.name2, walk(node.body), pos=node.pos)
    if isinstance(node, A.If):
        return A.If(walk(node.cond), walk(node.then_branch), walk(node.else_branch), pos=node.pos)
    if isinstance(node, A.MatchList):
        return A.MatchList(
            walk(node.scrutinee),
            walk(node.nil_branch),
            node.head_var,
            node.tail_var,
            walk(node.cons_branch),
            pos=node.pos,
        )
    if isinstance(node, A.MatchSum):
        return A.MatchSum(
            walk(node.scrutinee),
            node.left_var,
            walk(node.left_branch),
            node.right_var,
            walk(node.right_branch),
            pos=node.pos,
        )
    if isinstance(node, A.MatchTuple):
        return A.MatchTuple(walk(node.scrutinee), node.names, walk(node.body), pos=node.pos)
    if isinstance(node, A.Cons):
        return A.Cons(walk(node.head), walk(node.tail), pos=node.pos)
    if isinstance(node, A.TupleExpr):
        return A.TupleExpr(tuple(walk(e) for e in node.items), pos=node.pos)
    if isinstance(node, A.Inl):
        return A.Inl(walk(node.operand), pos=node.pos)
    if isinstance(node, A.Inr):
        return A.Inr(walk(node.operand), pos=node.pos)
    if isinstance(node, A.BinOp):
        return A.BinOp(node.op, walk(node.left), walk(node.right), pos=node.pos)
    if isinstance(node, A.Neg):
        return A.Neg(node.op, walk(node.operand), pos=node.pos)
    if isinstance(node, A.App):
        return A.App(node.fname, tuple(walk(e) for e in node.args), pos=node.pos)
    if isinstance(node, A.Stat):
        return node
    return node


class _LabelSupply:
    def __init__(self, existing: List[str]):
        self.counter = 0
        self.existing = set(existing)

    def next_label(self) -> str:
        while True:
            self.counter += 1
            label = f"auto#{self.counter}"
            if label not in self.existing:
                self.existing.add(label)
                return label


def insert_stat_annotations(
    program: A.Program,
    entry: str,
    degrees: Tuple[int, ...] = (1, 2),
) -> AutoStatResult:
    """Bottom-up automatic stat placement for an unannotated program.

    Returns a new program in which every *call* to a statically
    unanalyzable function is wrapped in ``Raml.stat``.  Functions that are
    only ever called from inside stat regions are left unwrapped (their
    cost is measured as part of the region).
    """
    if entry not in program:
        raise StaticAnalysisError(f"unknown function {entry!r}")
    sccs = scc_of(program)
    order = dependency_order(program)
    result = AutoStatResult(program)
    unanalyzable: Set[str] = set()
    current = program

    processed: Set[frozenset] = set()
    for fname in order:
        component = sccs[fname]
        if component in processed:
            continue
        processed.add(component)

        # calls (inside this SCC's bodies) to callees already classified as
        # unanalyzable become stat sites *before* the SCC itself is probed,
        # so the probe only tests the statically-analyzed remainder
        if unanalyzable:
            current = _wrap_component(current, component, unanalyzable, result)

        for member in sorted(component):
            degree = _function_analyzable(current, member, degrees)
            if degree is None:
                unanalyzable.add(member)
                result.unanalyzable.add(member)
            else:
                result.degrees[member] = degree

    result.program = typecheck_program(current)
    return result


def _wrap_component(
    program: A.Program,
    component: frozenset,
    unanalyzable: Set[str],
    result: AutoStatResult,
) -> A.Program:
    supply = _LabelSupply(program.stat_labels())
    functions = []
    for fdef in program:
        if fdef.name in component:
            body, count = _wrap_calls(fdef.body, unanalyzable, supply)
            result.inserted += count
            functions.append(
                A.FunDef(fdef.name, fdef.params, body, recursive=fdef.recursive, pos=fdef.pos)
            )
        else:
            functions.append(fdef)
    # re-infer types: new Stat nodes and rebuilt functions need annotations
    return typecheck_program(A.Program(functions))
