"""AARA constraint generation (the typing rules of Listings 3–5 + Eq. 6.2).

The generator walks share-let-normalized, simply-typed expressions and
emits linear constraints over symbolic resource coefficients.  The design
threads the constant potential through each judgment as a single
:class:`LinExpr`, introducing fresh LP variables only at join points
(branch merges) and at judgment boundaries (function signatures and stat
sites), which keeps the LPs — and hence the Hybrid-BayesPC polytopes —
small.  Discarding potential (structural rules U:Weak/U:Sub/U:Relax) is
woven into the syntax-directed rules via :func:`~repro.aara.annot.waive`,
which is always sound for the monotone resource metrics this reproduction
targets (Section 3.2 of the paper makes the same restriction).

``stat`` subexpressions are delegated to a pluggable *stat handler*; the
Hybrid AARA rules H:Opt / H:BayesWC / H:BayesPC (Section 6) are
implemented as handlers in :mod:`repro.inference.hybrid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .annot import (
    AList,
    AnnType,
    make_template,
    sharing,
    shift,
    superpose,
    waive,
    zero_annotation,
)
from .signatures import FunSignature, is_self_recursive, scc_of
from ..errors import StaticAnalysisError, UnanalyzableError
from ..lang import ast as A
from ..lang.builtins import BUILTINS, is_builtin
from ..lp import LPProblem, LinExpr

#: maximum number of function-body derivations per analysis, to guard
#: against pathological call-graph blowup of per-site instantiation
MAX_DERIVATIONS = 4000


@dataclass
class StatSite:
    """Everything a stat handler needs to emit its typing judgment."""

    label: str
    node: A.Stat
    ctx: Dict[str, AnnType]  # annotations of the free variables of the body
    p_in: LinExpr  # constant potential available at the site
    result_type: A.Type
    costful: bool
    lp: LPProblem
    degree: int


StatHandler = Callable[[StatSite], Tuple[AnnType, LinExpr]]


@dataclass
class DerivationEnv:
    """State of one SCC-instantiation derivation."""

    scc: frozenset
    sigs: Dict[Tuple[str, int], FunSignature]
    level: int
    costful: bool


@dataclass
class GenStats:
    derivations: int = 0
    stat_sites: int = 0
    instantiations: Dict[str, int] = field(default_factory=dict)


class ConstraintGenerator:
    """Generates the AARA linear program for one analyzed program."""

    def __init__(
        self,
        program: A.Program,
        degree: int,
        lp: Optional[LPProblem] = None,
        stat_handler: Optional[StatHandler] = None,
        stat_mode: str = "handler",
        cf_levels: Optional[int] = None,
        max_derivations: int = MAX_DERIVATIONS,
    ):
        if stat_mode not in ("handler", "transparent"):
            raise StaticAnalysisError(f"unknown stat mode {stat_mode!r}")
        if stat_mode == "handler" and stat_handler is None and program.has_stat():
            raise StaticAnalysisError("program has stat sites but no handler given")
        self.program = program
        self.degree = degree
        self.lp = lp if lp is not None else LPProblem("aara")
        self.stat_handler = stat_handler
        self.stat_mode = stat_mode
        self.sccs = scc_of(program)
        self.cf_levels = degree if cf_levels is None else cf_levels
        self.max_derivations = max_derivations
        self.stats = GenStats()

    # ------------------------------------------------------------------
    # SCC instantiation
    # ------------------------------------------------------------------

    def instantiate(self, fname: str, costful: bool = True) -> FunSignature:
        """Fresh derivation of ``fname``'s SCC; returns its level-0 signature."""
        if fname not in self.program:
            raise StaticAnalysisError(f"unknown function {fname!r}")
        scc = self.sccs[fname]
        recursive = is_self_recursive(self.program, fname, self.sccs)
        members = scc if recursive else frozenset([fname])
        n_levels = self.cf_levels if recursive else 0
        sigs: Dict[Tuple[str, int], FunSignature] = {}
        for level in range(n_levels + 1):
            for member in sorted(members):
                sigs[(member, level)] = self._fresh_signature(member, level)
        for level in range(n_levels + 1):
            level_costful = costful and level == 0
            env = DerivationEnv(scc=members if recursive else frozenset(), sigs=sigs, level=level, costful=level_costful)
            for member in sorted(members):
                self._derive_body(member, sigs[(member, level)], env)
        self.stats.instantiations[fname] = self.stats.instantiations.get(fname, 0) + 1
        return sigs[(fname, 0)]

    def _fresh_signature(self, fname: str, level: int) -> FunSignature:
        fdef = self.program[fname]
        assert fdef.fun_type is not None, "program must be type-checked"
        params = tuple(
            make_template(ty, self.degree, self.lp, hint=f"{fname}.arg")
            for ty in fdef.fun_type.params
        )
        result = make_template(fdef.fun_type.result, self.degree, self.lp, hint=f"{fname}.res")
        p0 = self.lp.fresh(f"{fname}.p0")
        q0 = self.lp.fresh(f"{fname}.q0")
        return FunSignature(fname, params, p0, result, q0, level)

    def _derive_body(self, fname: str, sig: FunSignature, env: DerivationEnv) -> None:
        self.stats.derivations += 1
        if self.stats.derivations > self.max_derivations:
            raise StaticAnalysisError(
                "derivation budget exceeded (call graph too deep for "
                "per-site resource polymorphism)"
            )
        fdef = self.program[fname]
        ctx = dict(zip(fdef.params, sig.params))
        result_ann, p_out = self.gen(fdef.body, ctx, sig.p0, env)
        waive(result_ann, sig.result, self.lp, note=f"{fname} result")
        self.lp.add_ge(p_out, sig.q0, note=f"{fname} leftover")

    # ------------------------------------------------------------------
    # Expression rules
    # ------------------------------------------------------------------

    def gen(
        self,
        expr: A.Expr,
        ctx: Dict[str, AnnType],
        p_in: LinExpr,
        env: DerivationEnv,
    ) -> Tuple[AnnType, LinExpr]:
        if isinstance(expr, A.Var):
            if expr.name not in ctx:
                raise StaticAnalysisError(f"variable {expr.name!r} missing from context")
            return ctx[expr.name], p_in
        if isinstance(expr, (A.IntLit, A.BoolLit, A.UnitLit)):
            return zero_annotation(expr.type, self.degree), p_in
        if isinstance(expr, A.Nil):
            # U:Nil — the empty list may carry any annotation for free
            return make_template(expr.type, self.degree, self.lp, hint="nil"), p_in
        if isinstance(expr, A.Tick):
            amount = expr.amount if env.costful else 0.0
            return zero_annotation(A.UNIT, self.degree), p_in - amount
        if isinstance(expr, A.ErrorExpr):
            # evaluation aborts: the judgment is vacuous on this path
            return make_template(expr.type, self.degree, self.lp, hint="err"), p_in
        if isinstance(expr, A.BinOp):
            # operands are potential-free ints/bools in normal form
            return zero_annotation(expr.type, self.degree), p_in
        if isinstance(expr, A.Neg):
            return zero_annotation(expr.type, self.degree), p_in
        if isinstance(expr, A.Cons):
            return self._gen_cons(expr, ctx, p_in)
        if isinstance(expr, A.TupleExpr):
            items = tuple(self._lookup(ctx, item) for item in expr.items)
            from .annot import AProd

            return AProd(items), p_in
        if isinstance(expr, A.Inl):
            return self._gen_inject(expr, ctx, p_in, left=True)
        if isinstance(expr, A.Inr):
            return self._gen_inject(expr, ctx, p_in, left=False)
        if isinstance(expr, A.Let):
            bound_ann, p_mid = self.gen(expr.bound, ctx, p_in, env)
            body_ctx = dict(ctx)
            body_ctx[expr.name] = bound_ann
            return self.gen(expr.body, body_ctx, p_mid, env)
        if isinstance(expr, A.Share):
            ann = ctx.get(expr.name)
            if ann is None:
                raise StaticAnalysisError(f"share of unbound variable {expr.name!r}")
            a1, a2 = sharing(ann, self.lp)
            body_ctx = dict(ctx)
            del body_ctx[expr.name]
            body_ctx[expr.name1] = a1
            body_ctx[expr.name2] = a2
            return self.gen(expr.body, body_ctx, p_in, env)
        if isinstance(expr, A.If):
            then_res = self.gen(expr.then_branch, ctx, p_in, env)
            else_res = self.gen(expr.else_branch, ctx, p_in, env)
            return self._merge(expr, [then_res, else_res])
        if isinstance(expr, A.MatchList):
            return self._gen_match_list(expr, ctx, p_in, env)
        if isinstance(expr, A.MatchSum):
            return self._gen_match_sum(expr, ctx, p_in, env)
        if isinstance(expr, A.MatchTuple):
            return self._gen_match_tuple(expr, ctx, p_in, env)
        if isinstance(expr, A.App):
            return self._gen_app(expr, ctx, p_in, env)
        if isinstance(expr, A.Stat):
            return self._gen_stat(expr, ctx, p_in, env)
        raise StaticAnalysisError(f"cannot analyze node {type(expr).__name__}")

    # -- helpers -------------------------------------------------------------

    def _lookup(self, ctx: Dict[str, AnnType], expr: A.Expr) -> AnnType:
        if not isinstance(expr, A.Var):
            raise StaticAnalysisError("operand is not a variable (not in normal form)")
        if expr.name not in ctx:
            raise StaticAnalysisError(f"variable {expr.name!r} missing from context")
        return ctx[expr.name]

    def _merge(
        self, expr: A.Expr, branches: List[Tuple[AnnType, LinExpr]]
    ) -> Tuple[AnnType, LinExpr]:
        """Join alternative branches: fresh result dominated by each branch."""
        result = make_template(expr.type, self.degree, self.lp, hint="join")
        p_out = self.lp.fresh("join.p")
        for ann, p_branch in branches:
            waive(ann, result, self.lp, note="branch join")
            self.lp.add_ge(p_branch, p_out, note="branch join potential")
        return result, p_out

    def _gen_cons(
        self, expr: A.Cons, ctx: Dict[str, AnnType], p_in: LinExpr
    ) -> Tuple[AnnType, LinExpr]:
        head_ann = self._lookup(ctx, expr.head)
        tail_ann = self._lookup(ctx, expr.tail)
        if not isinstance(tail_ann, AList):
            raise StaticAnalysisError("cons onto non-list annotation")
        assert isinstance(expr.type, A.TList)
        result = make_template(expr.type, self.degree, self.lp, hint="cons")
        assert isinstance(result, AList)
        # tail must cover the shifted result annotation; head covers elem
        shifted = shift(result.coeffs)
        for have, need in zip(tail_ann.coeffs, shifted):
            self.lp.add_ge(have, need, note="U:Cons shift")
        waive(tail_ann.elem, result.elem, self.lp, note="U:Cons elem")
        waive(head_ann, result.elem, self.lp, note="U:Cons head")
        # the first coefficient of the new list is paid from the constant
        q1 = result.coeffs[0] if result.coeffs else LinExpr()
        return result, p_in - q1

    def _gen_inject(
        self, expr: A.Expr, ctx: Dict[str, AnnType], p_in: LinExpr, left: bool
    ) -> Tuple[AnnType, LinExpr]:
        from .annot import ASum

        operand_ann = self._lookup(ctx, expr.operand)
        result = make_template(expr.type, self.degree, self.lp, hint="sum")
        assert isinstance(result, ASum)
        if left:
            waive(operand_ann, result.left, self.lp, note="U:SumL")
            paid = result.left_const
        else:
            waive(operand_ann, result.right, self.lp, note="U:SumR")
            paid = result.right_const
        return result, p_in - paid

    def _gen_match_list(
        self, expr: A.MatchList, ctx: Dict[str, AnnType], p_in: LinExpr, env: DerivationEnv
    ) -> Tuple[AnnType, LinExpr]:
        scrut_ann = self._lookup(ctx, expr.scrutinee)
        if not isinstance(scrut_ann, AList):
            raise StaticAnalysisError("list match on non-list annotation")
        nil_ctx = dict(ctx)
        del nil_ctx[expr.scrutinee.name]
        nil_res = self.gen(expr.nil_branch, nil_ctx, p_in, env)
        cons_ctx = dict(nil_ctx)
        cons_ctx[expr.head_var] = scrut_ann.elem
        cons_ctx[expr.tail_var] = AList(shift(scrut_ann.coeffs), scrut_ann.elem)
        q1 = scrut_ann.coeffs[0] if scrut_ann.coeffs else LinExpr()
        cons_res = self.gen(expr.cons_branch, cons_ctx, p_in + q1, env)
        return self._merge(expr, [nil_res, cons_res])

    def _gen_match_sum(
        self, expr: A.MatchSum, ctx: Dict[str, AnnType], p_in: LinExpr, env: DerivationEnv
    ) -> Tuple[AnnType, LinExpr]:
        from .annot import ASum

        scrut_ann = self._lookup(ctx, expr.scrutinee)
        if not isinstance(scrut_ann, ASum):
            raise StaticAnalysisError("sum match on non-sum annotation")
        base_ctx = dict(ctx)
        del base_ctx[expr.scrutinee.name]
        left_ctx = dict(base_ctx)
        left_ctx[expr.left_var] = scrut_ann.left
        left_res = self.gen(expr.left_branch, left_ctx, p_in + scrut_ann.left_const, env)
        right_ctx = dict(base_ctx)
        right_ctx[expr.right_var] = scrut_ann.right
        right_res = self.gen(expr.right_branch, right_ctx, p_in + scrut_ann.right_const, env)
        return self._merge(expr, [left_res, right_res])

    def _gen_match_tuple(
        self, expr: A.MatchTuple, ctx: Dict[str, AnnType], p_in: LinExpr, env: DerivationEnv
    ) -> Tuple[AnnType, LinExpr]:
        from .annot import AProd

        scrut_ann = self._lookup(ctx, expr.scrutinee)
        if not isinstance(scrut_ann, AProd) or len(scrut_ann.items) != len(expr.names):
            raise StaticAnalysisError("tuple match arity mismatch in annotation")
        body_ctx = dict(ctx)
        del body_ctx[expr.scrutinee.name]
        for name, item_ann in zip(expr.names, scrut_ann.items):
            body_ctx[name] = item_ann
        return self.gen(expr.body, body_ctx, p_in, env)

    # -- applications ---------------------------------------------------------

    def _gen_app(
        self, expr: A.App, ctx: Dict[str, AnnType], p_in: LinExpr, env: DerivationEnv
    ) -> Tuple[AnnType, LinExpr]:
        if is_builtin(expr.fname):
            spec = BUILTINS[expr.fname]
            if not spec.analyzable:
                raise UnanalyzableError(
                    f"builtin {expr.fname!r} is opaque to static analysis "
                    "(mark the surrounding code with Raml.stat for data-driven analysis)"
                )
            return zero_annotation(expr.type, self.degree), p_in

        if expr.fname in env.scc:
            sig = self._recursive_signature(expr.fname, env)
        else:
            sig = self.instantiate(expr.fname, costful=env.costful)

        if len(sig.params) != len(expr.args):
            raise StaticAnalysisError(f"arity mismatch calling {expr.fname}")
        for arg, param_ann in zip(expr.args, sig.params):
            waive(self._lookup(ctx, arg), param_ann, self.lp, note=f"call {expr.fname}")
        p_out = p_in - sig.p0 + sig.q0
        return sig.result, p_out

    def _recursive_signature(self, fname: str, env: DerivationEnv) -> FunSignature:
        """Signature for a recursive call: level ℓ superposed with level ℓ+1."""
        base = env.sigs[(fname, env.level)]
        nxt = env.sigs.get((fname, env.level + 1))
        if nxt is None:
            return base
        params = tuple(superpose(a, b) for a, b in zip(base.params, nxt.params))
        return FunSignature(
            fname,
            params,
            base.p0 + nxt.p0,
            superpose(base.result, nxt.result),
            base.q0 + nxt.q0,
            env.level,
        )

    # -- stat sites -------------------------------------------------------------

    def _gen_stat(
        self, expr: A.Stat, ctx: Dict[str, AnnType], p_in: LinExpr, env: DerivationEnv
    ) -> Tuple[AnnType, LinExpr]:
        if self.stat_mode == "transparent":
            return self.gen(expr.body, ctx, p_in, env)
        assert self.stat_handler is not None
        free = A.free_vars(expr.body)
        site_ctx = {name: ctx[name] for name in sorted(free) if name in ctx}
        missing = free - set(site_ctx)
        if missing:
            raise StaticAnalysisError(f"stat site {expr.label}: unbound {sorted(missing)}")
        # the judgment constant p0 must be non-negative at the site
        self.lp.add_ge(p_in, 0, note=f"stat {expr.label} p0>=0")
        site = StatSite(
            label=expr.label,
            node=expr,
            ctx=site_ctx,
            p_in=p_in,
            result_type=expr.type,
            costful=env.costful,
            lp=self.lp,
            degree=self.degree,
        )
        self.stats.stat_sites += 1
        result_ann, q0 = self.stat_handler(site)
        return result_ann, q0
