"""Resource-annotated types of univariate polynomial AARA (Section 4.2).

An annotated type mirrors a simple type, attaching to every list
constructor a vector of coefficients ``(q1, ..., qd)`` for the binomial
potential basis ``C(n,1), ..., C(n,d)`` and to every sum constructor two
constant potentials.  Coefficients are symbolic :class:`~repro.lp.LinExpr`
values during inference and become numeric constants after substituting an
LP solution.

The module implements all operations the typing rules need:

* ``potential_of_value`` — Φ(v : a)  (Eq. 4.2),
* ``shift``            — the ⊳ operator on coefficient vectors,
* ``sharing``          — the relation a ⅄ (a1, a2) of Listing 5,
* ``waive``            — subtyping (pointwise ≥, throwing potential away),
* ``superpose``        — pointwise sum for resource-polymorphic recursion,
* template creation / instantiation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Tuple

from ..errors import StaticAnalysisError
from ..lang import ast as A
from ..lang.values import VInl, VInr, VList, VTuple, Value
from ..lp import LPProblem, LinExpr, as_expr

Coeff = LinExpr


class AnnType:
    """Base class of resource-annotated types."""

    def coefficients(self) -> Iterator[Coeff]:
        """All coefficient expressions in the annotation, pre-order."""
        raise NotImplementedError

    def map_coeffs(self, f: Callable[[Coeff], Coeff]) -> "AnnType":
        raise NotImplementedError

    def simple(self) -> A.Type:
        """The underlying simple type."""
        raise NotImplementedError


@dataclass
class ABase(AnnType):
    """unit / int / bool — no potential."""

    base: A.Type

    def coefficients(self):
        return iter(())

    def map_coeffs(self, f):
        return self

    def simple(self):
        return self.base

    def __str__(self):
        return str(self.base)


@dataclass
class AProd(AnnType):
    items: Tuple[AnnType, ...]

    def coefficients(self):
        for item in self.items:
            yield from item.coefficients()

    def map_coeffs(self, f):
        return AProd(tuple(item.map_coeffs(f) for item in self.items))

    def simple(self):
        return A.TProd(tuple(item.simple() for item in self.items))

    def __str__(self):
        return "(" + " * ".join(str(i) for i in self.items) + ")"


@dataclass
class ASum(AnnType):
    left: AnnType
    left_const: Coeff
    right: AnnType
    right_const: Coeff

    def coefficients(self):
        yield self.left_const
        yield from self.left.coefficients()
        yield self.right_const
        yield from self.right.coefficients()

    def map_coeffs(self, f):
        return ASum(
            self.left.map_coeffs(f),
            f(self.left_const),
            self.right.map_coeffs(f),
            f(self.right_const),
        )

    def simple(self):
        return A.TSum(self.left.simple(), self.right.simple())

    def __str__(self):
        return f"(<{self.left},{self.left_const}> + <{self.right},{self.right_const}>)"


@dataclass
class AList(AnnType):
    """``L^(q1..qd)(elem)`` — binomial potential coefficients for degrees 1..d."""

    coeffs: Tuple[Coeff, ...]
    elem: AnnType

    @property
    def degree(self) -> int:
        return len(self.coeffs)

    def coefficients(self):
        yield from self.coeffs
        yield from self.elem.coefficients()

    def map_coeffs(self, f):
        return AList(tuple(f(c) for c in self.coeffs), self.elem.map_coeffs(f))

    def simple(self):
        return A.TList(self.elem.simple())

    def __str__(self):
        qs = ",".join(str(c) for c in self.coeffs)
        return f"L^({qs})({self.elem})"


# ---------------------------------------------------------------------------
# Template construction
# ---------------------------------------------------------------------------


def make_template(ty: A.Type, degree: int, lp: LPProblem, hint: str = "q") -> AnnType:
    """Fresh symbolic annotation of shape ``ty`` with list degree ``degree``."""
    if isinstance(ty, (A.TUnit, A.TInt, A.TBool, A.TVar)):
        base = A.INT if isinstance(ty, A.TVar) else ty
        return ABase(base)
    if isinstance(ty, A.TProd):
        return AProd(tuple(make_template(t, degree, lp, hint) for t in ty.items))
    if isinstance(ty, A.TSum):
        return ASum(
            make_template(ty.left, degree, lp, hint),
            lp.fresh(hint),
            make_template(ty.right, degree, lp, hint),
            lp.fresh(hint),
        )
    if isinstance(ty, A.TList):
        coeffs = tuple(lp.fresh(hint) for _ in range(degree))
        return AList(coeffs, make_template(ty.elem, degree, lp, hint))
    raise StaticAnalysisError(f"cannot annotate type {ty}")


def zero_annotation(ty: A.Type, degree: int) -> AnnType:
    """Annotation of shape ``ty`` with all coefficients 0."""
    zero = LinExpr()
    if isinstance(ty, (A.TUnit, A.TInt, A.TBool, A.TVar)):
        base = A.INT if isinstance(ty, A.TVar) else ty
        return ABase(base)
    if isinstance(ty, A.TProd):
        return AProd(tuple(zero_annotation(t, degree) for t in ty.items))
    if isinstance(ty, A.TSum):
        return ASum(
            zero_annotation(ty.left, degree), zero, zero_annotation(ty.right, degree), zero
        )
    if isinstance(ty, A.TList):
        return AList(tuple(zero for _ in range(degree)), zero_annotation(ty.elem, degree))
    raise StaticAnalysisError(f"cannot annotate type {ty}")


# ---------------------------------------------------------------------------
# Structural operations
# ---------------------------------------------------------------------------


def shift(coeffs: Tuple[Coeff, ...]) -> Tuple[Coeff, ...]:
    """⊳(q1,...,qd) = (q1+q2, q2+q3, ..., q_{d-1}+q_d, q_d)."""
    if not coeffs:
        return coeffs
    shifted = [coeffs[i] + coeffs[i + 1] for i in range(len(coeffs) - 1)]
    shifted.append(coeffs[-1])
    return tuple(shifted)


def _zip_check(a: AnnType, b: AnnType) -> None:
    if type(a) is not type(b):
        raise StaticAnalysisError(f"annotation shape mismatch: {a} vs {b}")


def waive(frm: AnnType, to: AnnType, lp: LPProblem, note: str = "waive") -> None:
    """Constrain Φ(· : frm) ≥ Φ(· : to) pointwise (subtyping).

    Potential may always be discarded, so any value typed at ``frm`` may be
    re-typed at ``to``; structural positions are covariant throughout.
    """
    _zip_check(frm, to)
    if isinstance(frm, ABase):
        return
    if isinstance(frm, AProd):
        for fa, ta in zip(frm.items, to.items):
            waive(fa, ta, lp, note)
        return
    if isinstance(frm, ASum):
        lp.add_ge(frm.left_const, to.left_const, note)
        lp.add_ge(frm.right_const, to.right_const, note)
        waive(frm.left, to.left, lp, note)
        waive(frm.right, to.right, lp, note)
        return
    if isinstance(frm, AList):
        if frm.degree != to.degree:
            raise StaticAnalysisError("list annotation degree mismatch")
        for fc, tc in zip(frm.coeffs, to.coeffs):
            lp.add_ge(fc, tc, note)
        waive(frm.elem, to.elem, lp, note)
        return
    raise StaticAnalysisError(f"cannot waive {frm}")


def equate(a: AnnType, b: AnnType, lp: LPProblem, note: str = "eq") -> None:
    """Constrain Φ(· : a) = Φ(· : b) pointwise."""
    _zip_check(a, b)
    if isinstance(a, ABase):
        return
    if isinstance(a, AProd):
        for xa, xb in zip(a.items, b.items):
            equate(xa, xb, lp, note)
        return
    if isinstance(a, ASum):
        lp.add_eq(a.left_const, b.left_const, note)
        lp.add_eq(a.right_const, b.right_const, note)
        equate(a.left, b.left, lp, note)
        equate(a.right, b.right, lp, note)
        return
    if isinstance(a, AList):
        for ca, cb in zip(a.coeffs, b.coeffs):
            lp.add_eq(ca, cb, note)
        equate(a.elem, b.elem, lp, note)
        return
    raise StaticAnalysisError(f"cannot equate {a}")


def superpose(a: AnnType, b: AnnType) -> AnnType:
    """Pointwise sum of two annotations of the same shape."""
    _zip_check(a, b)
    if isinstance(a, ABase):
        return a
    if isinstance(a, AProd):
        return AProd(tuple(superpose(xa, xb) for xa, xb in zip(a.items, b.items)))
    if isinstance(a, ASum):
        return ASum(
            superpose(a.left, b.left),
            a.left_const + b.left_const,
            superpose(a.right, b.right),
            a.right_const + b.right_const,
        )
    if isinstance(a, AList):
        return AList(
            tuple(ca + cb for ca, cb in zip(a.coeffs, b.coeffs)),
            superpose(a.elem, b.elem),
        )
    raise StaticAnalysisError(f"cannot superpose {a}")


def sharing(a: AnnType, lp: LPProblem, hint: str = "sh") -> Tuple[AnnType, AnnType]:
    """The sharing relation a ⅄ (a1, a2): fresh split with a = a1 + a2."""
    degree = _max_degree(a)
    a1 = make_template(a.simple(), degree, lp, hint)
    a2 = make_template(a.simple(), degree, lp, hint)
    equate(a, superpose(a1, a2), lp, note="share")
    return a1, a2


def _max_degree(a: AnnType) -> int:
    if isinstance(a, AList):
        return a.degree
    if isinstance(a, AProd):
        return max((_max_degree(i) for i in a.items), default=0)
    if isinstance(a, ASum):
        return max(_max_degree(a.left), _max_degree(a.right))
    return 0


# ---------------------------------------------------------------------------
# Potential functions
# ---------------------------------------------------------------------------


def binomial(n: int, k: int) -> int:
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def potential_of_value(value: Value, ann: AnnType) -> LinExpr:
    """Φ(v : a) as a linear expression in the annotation's coefficients."""
    if isinstance(ann, ABase):
        return LinExpr()
    if isinstance(ann, AProd):
        if not isinstance(value, VTuple) or len(value.items) != len(ann.items):
            raise StaticAnalysisError(f"value {value} does not fit annotation {ann}")
        return LinExpr.total(
            potential_of_value(v, a) for v, a in zip(value.items, ann.items)
        )
    if isinstance(ann, ASum):
        if isinstance(value, VInl):
            return ann.left_const + potential_of_value(value.value, ann.left)
        if isinstance(value, VInr):
            return ann.right_const + potential_of_value(value.value, ann.right)
        raise StaticAnalysisError(f"value {value} does not fit annotation {ann}")
    if isinstance(ann, AList):
        if not isinstance(value, VList):
            raise StaticAnalysisError(f"value {value} does not fit annotation {ann}")
        n = len(value.items)
        total = LinExpr.total(
            coeff * binomial(n, i + 1) for i, coeff in enumerate(ann.coeffs)
        )
        # fast path: potential-free elements (ints/bools) contribute nothing,
        # so a length-n list costs O(d) instead of O(n) to evaluate
        if _has_coefficients(ann.elem):
            for item in value.items:
                total = total + potential_of_value(item, ann.elem)
        return total
    raise StaticAnalysisError(f"unknown annotation {ann}")


def _has_coefficients(ann: AnnType) -> bool:
    for _coeff in ann.coefficients():
        return True
    return False


def potential_of_env(
    env: Mapping[str, Value], ctx: Mapping[str, AnnType]
) -> LinExpr:
    """Φ(V : Γ) — sum over the context entries."""
    total = LinExpr()
    for name, ann in ctx.items():
        if name not in env:
            raise StaticAnalysisError(f"environment missing variable {name!r}")
        total = total + potential_of_value(env[name], ann)
    return total


# ---------------------------------------------------------------------------
# Instantiation with LP solutions and structural size shapes
# ---------------------------------------------------------------------------


def instantiate(ann: AnnType, assignment: Mapping[str, float]) -> AnnType:
    """Replace symbolic coefficients with solved constants."""
    return ann.map_coeffs(lambda c: LinExpr.constant(c.evaluate(assignment)))


def coeffs_by_degree(ann: AnnType, nesting: int = 0) -> List[Tuple[int, Coeff]]:
    """Pairs ``(structural degree, coefficient)`` for objective weighting.

    The i-th coefficient of a list nested under ``k`` list constructors has
    structural degree ``i + k`` (e.g. the inner linear coefficient of an
    ``int list list`` scales with the *total* inner length, a degree-2
    quantity in the outer size).
    """
    out: List[Tuple[int, Coeff]] = []
    if isinstance(ann, ABase):
        return out
    if isinstance(ann, AProd):
        for item in ann.items:
            out.extend(coeffs_by_degree(item, nesting))
        return out
    if isinstance(ann, ASum):
        out.append((nesting, ann.left_const))
        out.append((nesting, ann.right_const))
        out.extend(coeffs_by_degree(ann.left, nesting))
        out.extend(coeffs_by_degree(ann.right, nesting))
        return out
    if isinstance(ann, AList):
        for i, coeff in enumerate(ann.coeffs):
            out.append((nesting + i + 1, coeff))
        out.extend(coeffs_by_degree(ann.elem, nesting + 1))
        return out
    raise StaticAnalysisError(f"unknown annotation {ann}")
