"""Concrete resource bounds extracted from solved typing judgments.

A :class:`ResourceBound` is a resource-annotated signature whose
coefficients are numbers.  Because the root judgment pins the output
annotation to zero, the bound on the cost of ``f(v1, ..., vk)`` is simply

    ``p0 + Σ_i Φ(v_i : a_i)``

which can be evaluated on concrete values or on *synthetic shapes* (lists
of a given size filled with zeros) to obtain the familiar ``Ψ(n; p0, p)``
curves of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .annot import ABase, AList, AProd, ASum, AnnType, binomial, potential_of_value
from ..errors import StaticAnalysisError
from ..lang.values import VList, VTuple, Value, from_python
from ..lp import LinExpr


def synthetic_list(n: int) -> Value:
    """An integer list of length ``n`` (contents are irrelevant to Φ)."""
    return VList(tuple([0] * n))


def synthetic_nested_list(outer: int, total_inner: int) -> Value:
    """An ``int list list`` with ``outer`` inner lists of ``total_inner`` total size."""
    if outer <= 0:
        return VList(())
    base, extra = divmod(total_inner, outer)
    inners = []
    for i in range(outer):
        size = base + (1 if i < extra else 0)
        inners.append(VList(tuple([0] * size)))
    return VList(tuple(inners))


@dataclass
class ResourceBound:
    """A numeric worst-case cost bound for a specific function."""

    fname: str
    params: Tuple[AnnType, ...]  # coefficients are constant LinExprs
    p0: float

    def evaluate(self, args: Sequence[Value]) -> float:
        """The bound value ``p0 + Σ Φ(arg_i : a_i)`` at concrete arguments."""
        if len(args) != len(self.params):
            raise StaticAnalysisError(
                f"bound for {self.fname} expects {len(self.params)} arguments"
            )
        total = self.p0
        for value, ann in zip(args, self.params):
            total += _potential_const(value, ann)
        return total

    def evaluate_python(self, *args) -> float:
        """Like :meth:`evaluate` but accepts plain Python data."""
        return self.evaluate([from_python(a) for a in args])

    # -- reporting ------------------------------------------------------------

    def coefficients(self) -> List[float]:
        out = [self.p0]
        for ann in self.params:
            out.extend(c.const for c in ann.coefficients())
        return out

    def describe(self, arg_names: Sequence[str] | None = None) -> str:
        """Human-readable polynomial, e.g. ``1.5 + 1·C(n1,2)``."""
        names = list(arg_names) if arg_names else [f"n{i+1}" for i in range(len(self.params))]
        terms: List[str] = []
        if abs(self.p0) > 1e-9 or not self.params:
            terms.append(f"{self.p0:g}")
        for name, ann in zip(names, self.params):
            terms.extend(_describe_ann(ann, name))
        if not terms:
            terms = ["0"]
        return " + ".join(terms)

    def __str__(self) -> str:
        return f"{self.fname}: {self.describe()}"


def _potential_const(value: Value, ann: AnnType) -> float:
    """Numeric Φ(v : a) for *concrete* annotations (coefficients constant).

    Equivalent to ``potential_of_value(value, ann).const`` but avoids
    allocating a LinExpr per element, which matters when sweeping bounds
    over thousands of synthetic shapes.
    """
    if isinstance(ann, ABase):
        return 0.0
    if isinstance(ann, AProd):
        return sum(_potential_const(v, a) for v, a in zip(value.items, ann.items))
    if isinstance(ann, AList):
        if not isinstance(value, VList):
            raise StaticAnalysisError(f"value {value} does not fit annotation {ann}")
        n = len(value.items)
        total = sum(
            coeff.const * binomial(n, i + 1) for i, coeff in enumerate(ann.coeffs)
        )
        elem = ann.elem
        if not isinstance(elem, ABase):
            for item in value.items:
                total += _potential_const(item, elem)
        return total
    # sums and anything exotic: fall back to the symbolic path
    return potential_of_value(value, ann).const


def _coeff_count(ann: AnnType) -> int:
    return sum(1 for _ in ann.coefficients())


def _feature_walk(value: Value, ann: AnnType, out, offset: int):
    """Accumulate Φ-features of ``value`` into ``out[offset:]``.

    Features follow the pre-order layout of ``AnnType.coefficients()``,
    so that ``Φ(v : a) = features · [c for c in a.coefficients()]``.
    Returns the next offset, or ``None`` for annotation/value shapes the
    fast path does not cover (sums; mismatched values) — callers must
    then fall back to :func:`_potential_const`.
    """
    if isinstance(ann, ABase):
        return offset
    if isinstance(ann, AProd):
        if not isinstance(value, VTuple) or len(value.items) != len(ann.items):
            return None
        for item, item_ann in zip(value.items, ann.items):
            offset = _feature_walk(item, item_ann, out, offset)
            if offset is None:
                return None
        return offset
    if isinstance(ann, AList):
        if not isinstance(value, VList):
            return None
        n = len(value.items)
        for i in range(len(ann.coeffs)):
            out[offset + i] += binomial(n, i + 1)
        offset += len(ann.coeffs)
        elem = ann.elem
        if isinstance(elem, ABase):
            return offset
        end = offset + _coeff_count(elem)
        for item in value.items:
            if _feature_walk(item, elem, out, offset) is None:
                return None
        return end
    return None  # ASum and anything exotic: symbolic path only


def shape_features(args: Sequence[Value], params: Sequence[AnnType]):
    """Feature vector ``f`` with ``bound.evaluate(args) = coeffs · f``.

    The leading entry is the constant-term feature (always 1, paired
    with ``p0``), followed by one feature per annotation coefficient in
    :meth:`ResourceBound.coefficients` order.  Returns ``None`` when the
    shape is not covered by the fast path.

    Evaluating a posterior of M bounds over a dense size sweep walks
    each synthetic shape once and reduces per-bound work to a dot
    product — the difference between seconds and minutes for the
    soundness criterion's 1..1000 sweep.
    """
    import numpy as np

    if len(args) != len(params):
        return None
    out = np.zeros(1 + sum(_coeff_count(p) for p in params))
    out[0] = 1.0
    offset = 1
    for value, ann in zip(args, params):
        offset = _feature_walk(value, ann, out, offset)
        if offset is None:
            return None
    return out


def _describe_ann(ann: AnnType, size_name: str) -> List[str]:
    terms: List[str] = []
    if isinstance(ann, ABase):
        return terms
    if isinstance(ann, AProd):
        for i, item in enumerate(ann.items):
            terms.extend(_describe_ann(item, f"{size_name}.{i+1}"))
        return terms
    if isinstance(ann, ASum):
        for const, tag in ((ann.left_const, "L"), (ann.right_const, "R")):
            if abs(const.const) > 1e-9:
                terms.append(f"{const.const:g}[{tag} {size_name}]")
        terms.extend(_describe_ann(ann.left, f"{size_name}.L"))
        terms.extend(_describe_ann(ann.right, f"{size_name}.R"))
        return terms
    if isinstance(ann, AList):
        for i, coeff in enumerate(ann.coeffs):
            value = coeff.const
            if abs(value) > 1e-9:
                if i == 0:
                    terms.append(f"{value:g}*{size_name}")
                else:
                    terms.append(f"{value:g}*C({size_name},{i+1})")
        terms.extend(_describe_ann(ann.elem, f"{size_name}'"))
        return terms
    raise StaticAnalysisError(f"unknown annotation {ann}")


def bound_curve(bound: ResourceBound, sizes: Sequence[int], shape_fn=None) -> List[float]:
    """Evaluate a single-argument bound on a sweep of input sizes.

    ``shape_fn`` maps a size to the full argument vector; by default a flat
    integer list of that size.
    """
    if shape_fn is None:
        shape_fn = lambda n: [synthetic_list(n)]  # noqa: E731
    return [bound.evaluate(shape_fn(n)) for n in sizes]


def psi(n: int, p0: float, coeffs: Sequence[float]) -> float:
    """The paper's Ψ(n; p0, p) = p0 + Σ_i p_i · C(n, i)."""
    return p0 + sum(c * binomial(n, i + 1) for i, c in enumerate(coeffs))
