"""Top-level drivers for (conventional and hybrid-skeleton) AARA analysis.

:func:`build_analysis` assembles the LP for a program's root function;
:func:`solve_analysis` runs the staged objective of Section 6.1 (data-gap
sums first, then root coefficients by descending degree) and extracts a
:class:`~repro.aara.bound.ResourceBound`.  :func:`run_conventional`
reproduces the paper's "Conventional AARA" column: it returns either a
bound or a verdict explaining the failure ("Cannot Analyze" for programs
with statically intractable fragments, infeasibility at the requested
degree otherwise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .annot import coeffs_by_degree, equate, instantiate, zero_annotation
from .bound import ResourceBound
from .signatures import FunSignature
from .typecheck import ConstraintGenerator, GenStats, StatHandler
from .. import telemetry
from ..errors import (
    InfeasibleError,
    ResourceLimitError,
    StaticAnalysisError,
    UnanalyzableError,
)
from ..lang import ast as A
from ..lp import LPProblem, LPSolution, LinExpr, solve_lexicographic


@dataclass
class Analysis:
    """An assembled (unsolved) AARA linear program for a root function."""

    program: A.Program
    fname: str
    degree: int
    lp: LPProblem
    signature: FunSignature
    generator: ConstraintGenerator

    def root_objectives(self, mode: str = "sum") -> List[LinExpr]:
        """Objective stages minimizing root input coefficients + p0.

        ``mode='sum'`` uses one stage (sum of all coefficients), ``'degree'``
        minimizes higher degrees with higher priority (Section 6.1 gives the
        user both choices).
        """
        by_degree: Dict[int, LinExpr] = {}
        for ann in self.signature.params:
            for deg, coeff in coeffs_by_degree(ann):
                by_degree[deg] = by_degree.get(deg, LinExpr()) + coeff
        if mode == "sum":
            total = LinExpr.total(by_degree.values()) + self.signature.p0
            return [total]
        stages = [by_degree[d] for d in sorted(by_degree, reverse=True)]
        stages.append(self.signature.p0)
        return stages


def _snap(value: float, tol: float = 1e-7) -> float:
    """Remove numerical dust from LP solutions (values within tol of an int)."""
    nearest = round(value)
    if abs(value - nearest) < tol:
        return float(nearest)
    return value


@dataclass
class AARAResult:
    bound: ResourceBound
    solution: LPSolution
    signature: FunSignature
    lp: LPProblem
    gen_stats: GenStats
    runtime_seconds: float = 0.0


def build_analysis(
    program: A.Program,
    fname: str,
    degree: int,
    stat_handler: Optional[StatHandler] = None,
    stat_mode: str = "handler",
    pin_root_output: bool = True,
    lp: Optional[LPProblem] = None,
    budget=None,
) -> Analysis:
    """Generate the full constraint system for ``fname`` at ``degree``.

    ``budget`` (an :class:`~repro.config.ExecutionBudget`) caps the LP's
    variable/constraint counts: adversarial recursion shapes that would
    make constraint generation blow up raise
    :class:`~repro.errors.ResourceLimitError` mid-build instead.
    """
    if fname not in program:
        raise StaticAnalysisError(f"unknown function {fname!r}")
    if lp is None and budget is not None:
        lp = LPProblem(
            "aara",
            max_variables=getattr(budget, "lp_variables", None),
            max_constraints=getattr(budget, "lp_constraints", None),
        )
    with telemetry.span(
        "aara.build", fname=fname, degree=degree, stat_mode=stat_mode
    ) as tspan:
        generator = ConstraintGenerator(
            program, degree, lp=lp, stat_handler=stat_handler, stat_mode=stat_mode
        )
        signature = generator.instantiate(fname, costful=True)
        if pin_root_output:
            zero = zero_annotation(program[fname].fun_type.result, degree)
            equate(signature.result, zero, generator.lp, note="root output pinned to 0")
            generator.lp.add_eq(signature.q0, 0, note="root q0 pinned to 0")
        tspan.set(constraints=len(generator.lp.constraints), variables=generator.lp.num_vars)
        telemetry.counter("aara.builds", 1)
        telemetry.counter("aara.constraints", len(generator.lp.constraints))
    return Analysis(program, fname, degree, generator.lp, signature, generator)


def solve_analysis(
    analysis: Analysis,
    extra_objectives: Sequence[LinExpr] = (),
    objective_mode: str = "sum",
) -> AARAResult:
    """Solve with staged objectives and extract the numeric bound."""
    start = time.perf_counter()
    objectives = list(extra_objectives) + analysis.root_objectives(objective_mode)
    solution = solve_lexicographic(
        analysis.lp, objectives, context=f"AARA {analysis.fname} degree {analysis.degree}"
    )
    sig = analysis.signature
    assignment = {k: _snap(v) for k, v in solution.assignment.items()}
    bound = ResourceBound(
        fname=analysis.fname,
        params=tuple(instantiate(p, assignment) for p in sig.params),
        p0=_snap(solution.value(sig.p0)),
    )
    elapsed = time.perf_counter() - start
    return AARAResult(bound, solution, sig, analysis.lp, analysis.generator.stats, elapsed)


def analyze_program(
    program: A.Program,
    fname: str,
    degree: int,
    stat_handler: Optional[StatHandler] = None,
    stat_mode: str = "handler",
    extra_objectives: Sequence[LinExpr] = (),
    budget=None,
) -> AARAResult:
    """Build and solve in one call."""
    analysis = build_analysis(program, fname, degree, stat_handler, stat_mode, budget=budget)
    return solve_analysis(analysis, extra_objectives)


def run_conventional_function(
    functions: Sequence[A.FunDef],
    fname: str,
    max_degree: int = 3,
    budget=None,
) -> "ConventionalVerdict":
    """Conventional verdict for one function of a parsed (surface) program.

    The per-function entry point of the incremental pipeline: the program
    is restricted to ``fname``'s call-graph cone *before* normalization
    and type checking, so the verdict — constraint system, staged LP
    solve, everything — is a pure function of the cone's source text.
    That is exactly what the incremental artifact cache keys on (see
    :mod:`repro.analysis.fingerprint`), making cached verdicts
    byte-identical to a cold analysis of the same cone.
    """
    from ..analysis.callgraph import call_graph, reachable
    from ..lang.normalize import normalize_program
    from ..lang.types import typecheck_program

    functions = list(functions)
    live = reachable(call_graph(functions), [fname])
    cone = A.Program([f for f in functions if f.name in live])
    if fname not in cone:
        raise StaticAnalysisError(f"unknown function {fname!r}")
    program = typecheck_program(normalize_program(cone))
    return run_conventional(program, fname, max_degree=max_degree, budget=budget)


# ---------------------------------------------------------------------------
# Conventional AARA verdicts (Table 1, "Conventional AARA" column)
# ---------------------------------------------------------------------------


@dataclass
class ConventionalVerdict:
    """Outcome of running purely static AARA on a benchmark program."""

    status: str  # 'bound' | 'cannot-analyze' | 'infeasible' | 'unboundable' | 'resource-limit'
    bound: Optional[ResourceBound] = None
    degree: int = 0
    detail: str = ""
    runtime_seconds: float = 0.0
    feasible_degrees: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def succeeded(self) -> bool:
        return self.status == "bound"


def run_conventional(
    program: A.Program, fname: str, max_degree: int = 3, budget=None
) -> ConventionalVerdict:
    """Try conventional AARA at degrees 1..max_degree (stat is transparent).

    Returns the lowest-degree feasible bound; ``cannot-analyze`` when the
    program contains statically intractable code, ``infeasible`` when no
    tried degree admits a bound, ``resource-limit`` when ``budget`` caps
    the LP size and constraint generation exceeds it (an honest "the
    analysis itself would be too expensive", not a solver failure).

    Before touching the LP, the recursion-shape lint pass runs over the
    reachable call graph: when it proves the LP infeasible at *every*
    degree (``R042``/``R043``), the verdict is ``unboundable`` with the
    lint explanation as detail — same Table 1 cell, but a diagnosis
    instead of a bare solver failure, at a fraction of the cost.
    """
    start = time.perf_counter()
    with telemetry.span("lint.recursion", fname=fname, guard="conventional"):
        from ..analysis.callgraph import call_graph, reachable
        from ..analysis.recursion import recursion_diagnostics

        functions = list(program)
        live = reachable(call_graph(functions), [fname])
        shape = [
            d
            for d in recursion_diagnostics([f for f in functions if f.name in live])
            if d.code in ("R042", "R043")
        ]
    if shape:
        first = shape[0]
        where = f" (at {first.span.line}:{first.span.col})" if first.span else ""
        return ConventionalVerdict(
            "unboundable",
            detail=f"[{first.code}] {first.message}{where}",
            runtime_seconds=time.perf_counter() - start,
        )
    feasible: List[int] = []
    first_result: Optional[AARAResult] = None
    for degree in range(1, max_degree + 1):
        try:
            result = analyze_program(
                program, fname, degree, stat_mode="transparent", budget=budget
            )
        except UnanalyzableError as exc:
            return ConventionalVerdict(
                "cannot-analyze", detail=str(exc), runtime_seconds=time.perf_counter() - start
            )
        except ResourceLimitError as exc:
            return ConventionalVerdict(
                "resource-limit",
                detail=str(exc),
                degree=degree,
                runtime_seconds=time.perf_counter() - start,
                feasible_degrees=tuple(feasible),
            )
        except (InfeasibleError, StaticAnalysisError) as exc:
            last_detail = str(exc)
            continue
        feasible.append(degree)
        if first_result is None:
            first_result = result
    if first_result is None:
        return ConventionalVerdict(
            "infeasible",
            detail=f"no bound at degrees 1..{max_degree}",
            runtime_seconds=time.perf_counter() - start,
        )
    return ConventionalVerdict(
        "bound",
        bound=first_result.bound,
        degree=feasible[0],
        runtime_seconds=time.perf_counter() - start,
        feasible_degrees=tuple(feasible),
    )
