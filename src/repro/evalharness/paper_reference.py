"""The paper's published evaluation numbers, for side-by-side comparison.

Source: Table 1 and Tables 2–11 of Pham, Saad & Hoffmann (PLDI 2024).
Soundness percentages; runtimes in seconds; gap triples are the
(5th, 50th, 95th) percentiles of relative estimation gaps.  ``None`` marks
the paper's ∅ (analysis not applicable).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: benchmark -> conventional-AARA verdict (Table 1, column 2)
PAPER_CONVENTIONAL: Dict[str, str] = {
    "MapAppend": "Cannot Analyze",
    "Concat": "Cannot Analyze",
    "InsertionSort2": "Wrong Degree",
    "QuickSort": "Cannot Analyze",
    "QuickSelect": "Cannot Analyze",
    "MedianOfMedians": "Cannot Analyze",
    "ZAlgorithm": "Wrong Degree",
    "BubbleSort": "Cannot Analyze",
    "Round": "Cannot Analyze",
    "EvenOddTail": "Wrong Degree",
}

#: benchmark -> method -> (dd_sound%, hybrid_sound%, dd_time_s, hybrid_time_s)
PAPER_TABLE1: Dict[str, Dict[str, Tuple[float, Optional[float], float, Optional[float]]]] = {
    "MapAppend": {
        "opt": (0.0, 0.0, 0.01, 0.01),
        "bayeswc": (68.5, 100.0, 1.87, 12.44),
        "bayespc": (75.5, 100.0, 51.83, 360.80),
    },
    "Concat": {
        "opt": (0.0, 0.0, 0.00, 0.01),
        "bayeswc": (67.3, 96.7, 2.54, 14.73),
        "bayespc": (96.0, 100.0, 113.53, 125.28),
    },
    "InsertionSort2": {
        "opt": (0.0, 0.0, 0.01, 0.02),
        "bayeswc": (57.6, 100.0, 1.53, 5.46),
        "bayespc": (21.0, 57.5, 10.68, 220.66),
    },
    "QuickSort": {
        "opt": (0.0, 0.0, 0.01, 0.11),
        "bayeswc": (4.0, 96.0, 2.20, 144.88),
        "bayespc": (0.0, 100.0, 13.72, 274.51),
    },
    "QuickSelect": {
        "opt": (0.0, 0.0, 0.02, 0.19),
        "bayeswc": (0.2, 98.2, 1.83, 222.47),
        "bayespc": (0.0, 100.0, 12.39, 277.20),
    },
    "MedianOfMedians": {
        "opt": (0.0, 0.0, 0.17, 0.21),
        "bayeswc": (11.5, 71.3, 2.36, 93.89),
        "bayespc": (0.0, 100.0, 70.39, 896.98),
    },
    "ZAlgorithm": {
        "opt": (0.0, 0.0, 0.09, 0.13),
        "bayeswc": (13.7, 95.9, 1.96, 72.21),
        "bayespc": (28.0, 100.0, 11.11, 509.29),
    },
    "BubbleSort": {
        "opt": (0.0, None, 0.01, None),
        "bayeswc": (40.1, None, 2.69, None),
        "bayespc": (31.5, None, 11.70, None),
    },
    "Round": {
        "opt": (0.0, None, 0.01, None),
        "bayeswc": (58.3, None, 1.91, None),
        "bayespc": (81.0, None, 12.87, None),
    },
    "EvenOddTail": {
        "opt": (0.0, None, 0.01, None),
        "bayeswc": (65.1, None, 1.98, None),
        "bayespc": (70.0, None, 11.79, None),
    },
}

Gap = Tuple[float, float, float]

#: benchmark -> size -> method -> (dd_gaps, hybrid_gaps); from Tables 2–11
#: (a subset of sizes shown in the paper; None = ∅)
PAPER_GAPS: Dict[str, Dict[int, Dict[str, Tuple[Optional[Gap], Optional[Gap]]]]] = {
    "QuickSort": {
        10: {
            "opt": ((-0.23, -0.23, -0.23), (-0.29, -0.29, -0.29)),
            "bayeswc": ((0.37, 3.66, 32.71), (36.48, 181.96, 1776.52)),
            "bayespc": ((-0.52, -0.47, -0.22), (4.12, 4.73, 4.96)),
        },
        100: {
            "opt": ((-0.90, -0.90, -0.90), (-0.39, -0.39, -0.39)),
            "bayeswc": ((-0.87, -0.64, 1.24), (17.83, 82.90, 667.39)),
            "bayespc": ((-0.88, -0.79, -0.61), (3.78, 4.41, 4.69)),
        },
        1000: {
            "opt": ((-0.96, -0.96, -0.96), (-0.40, -0.40, -0.40)),
            "bayeswc": ((-0.98, -0.91, -0.09), (5.07, 60.66, 610.58)),
            "bayespc": ((-0.93, -0.83, -0.63), (3.75, 4.38, 4.66)),
        },
    },
    "MedianOfMedians": {
        10: {
            "opt": ((-0.42, -0.42, -0.42), (-0.39, -0.39, -0.39)),
            "bayeswc": ((-0.29, 0.60, 5.20), (19.69, 85.53, 709.77)),
            "bayespc": ((-0.64, -0.55, -0.34), (1.41, 1.48, 1.52)),
        },
        100: {
            "opt": ((-0.95, -0.95, -0.95), (-0.49, -0.49, -0.49)),
            "bayeswc": ((-0.95, -0.89, -0.62), (8.35, 40.30, 339.77)),
            "bayespc": ((-0.91, -0.80, -0.54), (1.38, 1.45, 1.50)),
        },
        1000: {
            "opt": ((-0.99, -0.99, -0.99), (-0.50, -0.50, -0.50)),
            "bayeswc": ((-1.00, -0.99, -0.82), (2.48, 31.90, 328.10)),
            "bayespc": ((-0.94, -0.81, -0.55), (1.38, 1.45, 1.50)),
        },
    },
    "Round": {
        10: {
            "opt": ((0.26, 0.26, 0.26), None),
            "bayeswc": ((0.27, 0.68, 2.83), None),
            "bayespc": ((0.49, 0.82, 2.57), None),
        },
        100: {
            "opt": ((0.40, 0.40, 0.40), None),
            "bayeswc": ((0.40, 0.68, 2.33), None),
            "bayespc": ((0.55, 0.87, 2.86), None),
        },
        1000: {
            "opt": ((0.73, 0.73, 0.73), None),
            "bayeswc": ((0.67, 1.06, 3.11), None),
            "bayespc": ((0.89, 1.29, 3.75), None),
        },
    },
    "EvenOddTail": {
        10: {
            "opt": ((0.73, 0.73, 0.73), None),
            "bayeswc": ((0.53, 1.88, 9.15), None),
            "bayespc": ((0.17, 0.38, 1.00), None),
        },
        100: {
            "opt": ((-0.14, -0.14, -0.14), None),
            "bayeswc": ((-0.08, 0.62, 3.80), None),
            "bayespc": ((0.10, 0.25, 0.90), None),
        },
        1000: {
            "opt": ((-0.21, -0.21, -0.21), None),
            "bayeswc": ((-0.62, 0.52, 3.75), None),
            "bayespc": ((0.11, 0.27, 0.92), None),
        },
    },
    "BubbleSort": {
        10: {
            "opt": ((0.01, 0.01, 0.01), None),
            "bayeswc": ((0.44, 6.29, 60.73), None),
            "bayespc": ((-0.31, 0.02, 0.39), None),
        },
        100: {
            "opt": ((-0.38, -0.38, -0.38), None),
            "bayeswc": ((-0.48, 0.41, 8.34), None),
            "bayespc": ((-0.34, -0.10, 0.17), None),
        },
        1000: {
            "opt": ((-0.38, -0.38, -0.38), None),
            "bayeswc": ((-0.93, -0.22, 5.31), None),
            "bayespc": ((-0.35, -0.10, 0.15), None),
        },
    },
    "InsertionSort2": {
        10: {
            "opt": ((-0.37, -0.37, -0.37), (-0.15, -0.15, -0.15)),
            "bayeswc": ((0.05, 1.17, 8.68), (0.39, 0.72, 1.47)),
            "bayespc": ((-0.33, -0.12, 0.35), (-0.14, 0.08, 0.84)),
        },
        1000: {
            "opt": ((-0.40, -0.40, -0.40), (-0.15, -0.15, -0.15)),
            "bayeswc": ((-0.57, 0.14, 3.33), (0.39, 0.72, 1.47)),
            "bayespc": ((-0.40, -0.24, 0.25), (-0.14, 0.08, 0.84)),
        },
    },
    "ZAlgorithm": {
        10: {
            "opt": ((-0.68, -0.68, -0.68), (-0.08, -0.08, -0.08)),
            "bayeswc": ((-0.53, -0.21, 1.37), (0.00, 0.29, 2.99)),
            "bayespc": ((-0.48, -0.10, 0.33), (1.18, 1.49, 1.78)),
        },
        1000: {
            "opt": ((-0.68, -0.68, -0.68), (-0.08, -0.08, -0.08)),
            "bayeswc": ((-0.76, -0.47, 0.56), (0.00, 0.29, 2.99)),
            "bayespc": ((-0.50, -0.14, 0.22), (1.18, 1.49, 1.78)),
        },
    },
    "MapAppend": {
        10: {
            "opt": ((-0.26, -0.26, -0.26), (-0.15, -0.15, -0.15)),
            "bayeswc": ((0.03, 0.41, 1.64), (0.53, 1.03, 2.27)),
            "bayespc": ((0.85, 1.62, 2.61), (1.18, 1.92, 2.91)),
        },
        1000: {
            "opt": ((-0.32, -0.32, -0.32), (-0.15, -0.15, -0.15)),
            "bayeswc": ((-0.22, 0.20, 1.15), (0.53, 1.03, 2.27)),
            "bayespc": ((0.74, 1.54, 2.52), (1.11, 1.88, 2.89)),
        },
    },
    "Concat": {
        10: {
            "opt": ((-0.33, -0.33, -0.33), (0.03, 0.03, 0.03)),
            "bayeswc": ((14.05, 66.64, 744.65), (1.74, 4.80, 19.86)),
            "bayespc": ((0.37, 0.60, 0.90), (4.46, 5.90, 7.19)),
        },
        1000: {
            "opt": ((2.83, 2.83, 2.83), (22.44, 22.44, 22.44)),
            "bayeswc": ((11.04, 931.52, 32459.92), (2.33, 97.00, 1309.28)),
            "bayespc": ((1.06, 7.84, 42.44), (132.48, 298.20, 456.99)),
        },
    },
}
