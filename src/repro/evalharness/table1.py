"""Table 1: fraction of sound inferred bounds + analysis runtime.

Runs, for each benchmark, the conventional-AARA verdict and the six
analysis configurations {Opt, BayesWC, BayesPC} × {data-driven, hybrid}
(hybrid where applicable), then checks each posterior bound against the
benchmark's analytic ground truth on a size sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aara.analyze import ConventionalVerdict, run_conventional
from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..errors import ReproError
from ..inference import PosteriorResult, collect_dataset, run_analysis
from ..lang import ast as A
from ..lang import compile_program
from ..suite.registry import BenchmarkSpec

#: sizes on which soundness is checked — a dense sweep, since several
#: ground truths are wiggly (e.g. Round peaks at n = 2^k − 1) and the paper
#: requires soundness "for all input sizes" up to 1000
SOUNDNESS_SIZES = tuple(range(1, 1001))
METHODS = ("opt", "bayeswc", "bayespc")
MODES = ("data-driven", "hybrid")


@dataclass
class BenchmarkRun:
    """All analysis outcomes for one benchmark."""

    spec: BenchmarkSpec
    conventional: ConventionalVerdict
    conventional_label: str
    results: Dict[Tuple[str, str], PosteriorResult] = field(default_factory=dict)
    errors: Dict[Tuple[str, str], str] = field(default_factory=dict)
    programs: Dict[str, A.Program] = field(default_factory=dict)
    datasets: Dict[str, object] = field(default_factory=dict)

    def soundness(self, mode: str, method: str) -> Optional[float]:
        result = self.results.get((mode, method))
        if result is None:
            return None
        return result.soundness_fraction(
            self.spec.truth, SOUNDNESS_SIZES, self.spec.shape_fn
        )

    def runtime(self, mode: str, method: str) -> Optional[float]:
        result = self.results.get((mode, method))
        return None if result is None else result.runtime_seconds


def conventional_label(spec: BenchmarkSpec, verdict: ConventionalVerdict) -> str:
    """Map a verdict to the paper's Table 1 wording."""
    if verdict.status == "cannot-analyze":
        return "Cannot Analyze"
    if verdict.status == "infeasible":
        # AARA terminates with no bound at any tried degree — the paper also
        # reports this as Cannot Analyze (e.g. BubbleSort, MedianOfMedians)
        return "Cannot Analyze"
    if verdict.degree > spec.truth_degree:
        return "Wrong Degree"
    return f"Bound (degree {verdict.degree})"


def run_benchmark(
    spec: BenchmarkSpec,
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    modes: Sequence[str] = MODES,
    conventional_max_degree: int = 3,
) -> BenchmarkRun:
    """Run the full Table 1 protocol for one benchmark."""
    rng = np.random.default_rng(seed)
    variants = {}
    variants["data-driven"] = (spec.data_driven_source, spec.data_driven_entry)
    if spec.hybrid_source is not None:
        variants["hybrid"] = (spec.hybrid_source, spec.hybrid_entry)

    dd_program = compile_program(spec.data_driven_source)
    verdict = run_conventional(
        dd_program, spec.data_driven_entry, max_degree=conventional_max_degree
    )
    run = BenchmarkRun(spec, verdict, conventional_label(spec, verdict))
    run.programs["data-driven"] = dd_program

    inputs = spec.inputs(rng)
    for mode in modes:
        if mode not in variants:
            continue
        source, entry = variants[mode]
        program = run.programs.get(mode) or compile_program(source)
        run.programs[mode] = program
        dataset = collect_dataset(program, entry, inputs)
        run.datasets[mode] = dataset
        mode_config = spec.config(config, hybrid=(mode == "hybrid"))
        for method in methods:
            method_rng = np.random.default_rng(seed + 1000 + hash((mode, method)) % 1000)
            try:
                result = run_analysis(program, entry, dataset, mode_config, method, rng=method_rng)
            except ReproError as exc:
                run.errors[(mode, method)] = f"{type(exc).__name__}: {exc}"
                continue
            run.results[(mode, method)] = result
    return run


def run_table1(
    specs: Sequence[BenchmarkSpec],
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
) -> List[BenchmarkRun]:
    return [run_benchmark(spec, config, seed=seed, methods=methods) for spec in specs]


_METHOD_LABEL = {"opt": "Opt", "bayeswc": "BayesWC", "bayespc": "BayesPC"}


def render_table1(runs: Sequence[BenchmarkRun]) -> str:
    """Text rendering in the layout of the paper's Table 1."""
    header = (
        f"{'Benchmark':17s} {'Conventional':15s} {'Method':8s} "
        f"{'DD sound':>9s} {'Hy sound':>9s} {'DD time':>8s} {'Hy time':>8s}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        for i, method in enumerate(METHODS):
            name = run.spec.name if i == 0 else ""
            conv = run.conventional_label if i == 0 else ""

            def cell_sound(mode: str) -> str:
                if (mode, method) in run.errors:
                    return "ERR"
                value = run.soundness(mode, method)
                if value is None:
                    return "Cannot" if mode == "hybrid" and run.spec.hybrid_source is None else "-"
                return f"{100 * value:.1f}%"

            def cell_time(mode: str) -> str:
                value = run.runtime(mode, method)
                return "-" if value is None else f"{value:.2f}s"

            lines.append(
                f"{name:17s} {conv:15s} {_METHOD_LABEL[method]:8s} "
                f"{cell_sound('data-driven'):>9s} {cell_sound('hybrid'):>9s} "
                f"{cell_time('data-driven'):>8s} {cell_time('hybrid'):>8s}"
            )
    return "\n".join(lines)
