"""Table 1: fraction of sound inferred bounds + analysis runtime.

Runs, for each benchmark, the conventional-AARA verdict and the six
analysis configurations {Opt, BayesWC, BayesPC} × {data-driven, hybrid}
(hybrid where applicable), then checks each posterior bound against the
benchmark's analytic ground truth on a size sweep.

Execution is delegated to :mod:`repro.evalharness.runner`: the grid is
expanded into independent ``EvalTask``s with deterministic per-task
seeds, optionally fanned out over worker processes and memoized in an
on-disk cache; this module assembles the task outcomes back into
:class:`BenchmarkRun` values and renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .runner import (
    METHODS,
    MODES,
    EvalRunner,
    RunnerReport,
    input_seed,
    run_grid,
    verdict_from_json,
)
from ..aara.analyze import ConventionalVerdict
from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..errors import ReproError
from ..inference import PosteriorResult
from ..inference.serialize import result_from_json
from ..suite.registry import BenchmarkSpec

#: sizes on which soundness is checked — a dense sweep, since several
#: ground truths are wiggly (e.g. Round peaks at n = 2^k − 1) and the paper
#: requires soundness "for all input sizes" up to 1000
SOUNDNESS_SIZES = tuple(range(1, 1001))


class LazyMapping:
    """Dict-compatible mapping whose values materialize on first access.

    Benchmark programs and runtime datasets are only needed by a few
    consumers (curve scatter, REPL poking); recomputing them eagerly
    would defeat the warm-cache fast path, so assembly defers them.
    """

    def __init__(self, factories: Dict[str, Callable[[], object]]) -> None:
        self._factories = dict(factories)
        self._values: Dict[str, object] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._factories

    def __getitem__(self, key: str):
        if key not in self._values:
            self._values[key] = self._factories[key]()
        return self._values[key]

    def get(self, key: str, default=None):
        return self[key] if key in self._factories else default

    def __setitem__(self, key: str, value) -> None:
        self._factories[key] = lambda: value
        self._values[key] = value

    def __iter__(self):
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def keys(self):
        return self._factories.keys()

    def items(self):
        return [(key, self[key]) for key in self._factories]


@dataclass
class BenchmarkRun:
    """All analysis outcomes for one benchmark."""

    spec: BenchmarkSpec
    conventional: ConventionalVerdict
    conventional_label: str
    results: Dict[Tuple[str, str], PosteriorResult] = field(default_factory=dict)
    errors: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: per-cell error provenance for failed cells, keyed like ``errors``
    #: (plus ``('static', 'aara')`` for a failed conventional verdict):
    #: {stage, error_class, attempts, elapsed}
    failures: Dict[Tuple[str, str], Dict[str, object]] = field(default_factory=dict)
    programs: Dict[str, object] = field(default_factory=dict)
    datasets: Dict[str, object] = field(default_factory=dict)
    _soundness_cache: Dict[Tuple[str, str], float] = field(
        default_factory=dict, repr=False, compare=False
    )
    _shape_cache: Dict[int, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _shared_shape_fn(self):
        """spec.shape_fn memoized per size — the synthetic shapes for the
        soundness sweep are identical across the six table cells."""
        spec_shape = self.spec.shape_fn
        if spec_shape is None:
            from ..inference.posterior import default_shape

            spec_shape = default_shape
        cache = self._shape_cache

        def shape_fn(n: int):
            if n not in cache:
                cache[n] = spec_shape(n)
            return cache[n]

        return shape_fn

    def soundness(self, mode: str, method: str) -> Optional[float]:
        result = self.results.get((mode, method))
        if result is None:
            return None
        key = (mode, method)
        if key not in self._soundness_cache:
            self._soundness_cache[key] = result.soundness_fraction(
                self.spec.truth, SOUNDNESS_SIZES, self._shared_shape_fn()
            )
        return self._soundness_cache[key]

    def runtime(self, mode: str, method: str) -> Optional[float]:
        result = self.results.get((mode, method))
        return None if result is None else result.runtime_seconds


def conventional_label(spec: BenchmarkSpec, verdict: ConventionalVerdict) -> str:
    """Map a verdict to the paper's Table 1 wording."""
    if verdict.status == "error":
        return "ERR"
    if verdict.status == "cannot-analyze":
        return "Cannot Analyze"
    if verdict.status == "infeasible":
        # AARA terminates with no bound at any tried degree — the paper also
        # reports this as Cannot Analyze (e.g. BubbleSort, MedianOfMedians)
        return "Cannot Analyze"
    if verdict.status == "unboundable":
        # same Table 1 cell as infeasible, but diagnosed pre-LP by the
        # recursion-shape lint (verdict.detail carries the R042/R043 message)
        return "Cannot Analyze"
    if verdict.degree > spec.truth_degree:
        return "Wrong Degree"
    return f"Bound (degree {verdict.degree})"


# ---------------------------------------------------------------------------
# Assembly: runner outcomes -> BenchmarkRun
# ---------------------------------------------------------------------------


def _lazy_program(spec: BenchmarkSpec, mode: str) -> Callable[[], object]:
    def build():
        from ..lang import compile_program

        source = spec.hybrid_source if mode == "hybrid" else spec.data_driven_source
        return compile_program(source)

    return build


def _lazy_dataset(run: BenchmarkRun, spec: BenchmarkSpec, mode: str, seed: int):
    def build():
        from ..inference import collect_dataset

        rng = np.random.default_rng(input_seed(seed, spec.name))
        entry = spec.hybrid_entry if mode == "hybrid" else spec.data_driven_entry
        return collect_dataset(run.programs[mode], entry, spec.inputs(rng))

    return build


def _outcome_failure(outcome: Dict) -> Dict[str, object]:
    failure = outcome.get("failure") or {}
    return {
        "stage": failure.get("stage", "worker"),
        "error_class": failure.get("error_class", "Error"),
        "attempts": failure.get("attempts", outcome.get("metrics", {}).get("attempts", 1)),
        "elapsed": failure.get("elapsed", 0.0),
        "outcome": outcome.get("outcome", "error"),
    }


def assemble_run(spec: BenchmarkSpec, report: RunnerReport, seed: int) -> BenchmarkRun:
    """Build one benchmark's :class:`BenchmarkRun` from task outcomes.

    Failed cells never abort assembly: a failed conventional verdict is
    rendered as an ``ERR`` label and every failed analysis cell keeps its
    error string plus provenance in ``errors`` / ``failures``, so partial
    grids still produce a (footnoted) table.
    """
    by_id = report.outcome_by_id()
    conv = by_id.get(f"{spec.name}/static/aara")
    if conv is None:
        raise ReproError(f"conventional AARA task missing for {spec.name}")
    if conv["ok"]:
        verdict = verdict_from_json(conv["verdict"])
        run = BenchmarkRun(spec, verdict, conventional_label(spec, verdict))
    else:
        verdict = ConventionalVerdict(
            status="error", bound=None, degree=0, detail=conv["error"] or ""
        )
        run = BenchmarkRun(spec, verdict, conventional_label(spec, verdict))
        run.failures[("static", "aara")] = _outcome_failure(conv)

    modes_seen = set()
    for outcome in report.outcomes:
        if outcome["benchmark"] != spec.name or outcome["kind"] != "analysis":
            continue
        key = (outcome["mode"], outcome["method"])
        if outcome["ok"]:
            run.results[key] = result_from_json(outcome["result"])
        else:
            run.errors[key] = outcome["error"]
            run.failures[key] = _outcome_failure(outcome)
        modes_seen.add(outcome["mode"])

    programs = LazyMapping({mode: _lazy_program(spec, mode) for mode in modes_seen})
    run.programs = programs
    run.datasets = LazyMapping(
        {mode: _lazy_dataset(run, spec, mode, seed) for mode in modes_seen}
    )
    return run


def assemble_available(
    specs: Sequence[BenchmarkSpec], report: RunnerReport, seed: int
) -> List[BenchmarkRun]:
    """Assemble only the benchmarks whose cells actually ran.

    An interrupted (gracefully shut down) run yields a partial report;
    benchmarks whose conventional verdict never executed are skipped
    instead of raising, so a partial table still renders and ``bench
    resume`` can complete the grid later.
    """
    by_id = report.outcome_by_id()
    return [
        assemble_run(spec, report, seed)
        for spec in specs
        if f"{spec.name}/static/aara" in by_id
    ]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_benchmark(
    spec: BenchmarkSpec,
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    modes: Sequence[str] = MODES,
    conventional_max_degree: int = 3,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    runner: Optional[EvalRunner] = None,
) -> BenchmarkRun:
    """Run the full Table 1 protocol for one benchmark."""
    report = run_grid(
        [spec],
        config=config,
        seed=seed,
        methods=methods,
        modes=modes,
        conventional_max_degree=conventional_max_degree,
        jobs=jobs,
        cache_dir=cache_dir,
        runner=runner,
    )
    return assemble_run(spec, report, seed)


def run_table1(
    specs: Sequence[BenchmarkSpec],
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    modes: Sequence[str] = MODES,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    runner: Optional[EvalRunner] = None,
    metrics_path: Optional[str] = None,
) -> List[BenchmarkRun]:
    """The whole grid in one runner invocation (one shared worker pool)."""
    report = run_grid(
        specs,
        config=config,
        seed=seed,
        methods=methods,
        modes=modes,
        jobs=jobs,
        cache_dir=cache_dir,
        runner=runner,
    )
    if metrics_path is not None:
        report.write_metrics(metrics_path)
    return [assemble_run(spec, report, seed) for spec in specs]


_METHOD_LABEL = {"opt": "Opt", "bayeswc": "BayesWC", "bayespc": "BayesPC"}


def failure_note(run: BenchmarkRun, key: Tuple[str, str]) -> str:
    """One human-readable provenance line for a failed cell."""
    mode, method = key
    failure = run.failures.get(key) or {}
    stage = failure.get("stage", "unknown")
    error_class = failure.get("error_class", "Error")
    attempts = failure.get("attempts", "?")
    detail = f"{stage} stage, {error_class}, {attempts} attempt(s)"
    elapsed = failure.get("elapsed")
    if isinstance(elapsed, (int, float)) and elapsed > 0:
        detail += f", {elapsed:.1f}s"
    return f"{run.spec.name}/{mode}/{method} — {detail}"


def render_table1(runs: Sequence[BenchmarkRun]) -> str:
    """Text rendering in the layout of the paper's Table 1.

    Failed cells render as ``ERR[n]`` and the table ends with a
    ``Failures:`` block resolving each footnote to its provenance
    (pipeline stage, error class, attempts, elapsed time).
    """
    header = (
        f"{'Benchmark':17s} {'Conventional':15s} {'Method':8s} "
        f"{'DD sound':>9s} {'Hy sound':>9s} {'DD time':>8s} {'Hy time':>8s}"
    )
    lines = [header, "-" * len(header)]
    notes: List[str] = []

    def footnote(run: BenchmarkRun, key: Tuple[str, str]) -> str:
        notes.append(failure_note(run, key))
        return f"ERR[{len(notes)}]"

    for run in runs:
        for i, method in enumerate(METHODS):
            name = run.spec.name if i == 0 else ""
            conv = ""
            if i == 0:
                conv = run.conventional_label
                if ("static", "aara") in run.failures:
                    conv = footnote(run, ("static", "aara"))

            def cell_sound(mode: str) -> str:
                if (mode, method) in run.errors:
                    return footnote(run, (mode, method))
                value = run.soundness(mode, method)
                if value is None:
                    return "Cannot" if mode == "hybrid" and run.spec.hybrid_source is None else "-"
                return f"{100 * value:.1f}%"

            def cell_time(mode: str) -> str:
                value = run.runtime(mode, method)
                return "-" if value is None else f"{value:.2f}s"

            lines.append(
                f"{name:17s} {conv:15s} {_METHOD_LABEL[method]:8s} "
                f"{cell_sound('data-driven'):>9s} {cell_sound('hybrid'):>9s} "
                f"{cell_time('data-driven'):>8s} {cell_time('hybrid'):>8s}"
            )
    if notes:
        lines.append("")
        lines.append("Failures:")
        lines.extend(f"  [{i}] {note}" for i, note in enumerate(notes, 1))
    return "\n".join(lines)
