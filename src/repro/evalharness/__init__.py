"""Evaluation harness: regenerates the paper's tables and figures."""

from .asciiplot import render_ascii_curve, render_panels
from .curves import (
    CurveSeries,
    Surface,
    fig6_curves,
    mapappend_surface,
    posterior_curve,
    render_curve,
    scatter_from_dataset,
)
from .gaps import GAP_SIZES, GapCell, benchmark_gaps, render_gap_table, soundness_by_gap
from .paper_reference import PAPER_CONVENTIONAL, PAPER_GAPS, PAPER_TABLE1
from .report import gaps_markdown, markdown_report, table1_markdown
from .table1 import (
    METHODS,
    MODES,
    SOUNDNESS_SIZES,
    BenchmarkRun,
    conventional_label,
    render_table1,
    run_benchmark,
    run_table1,
)

__all__ = [
    "render_ascii_curve",
    "render_panels",
    "CurveSeries",
    "Surface",
    "fig6_curves",
    "mapappend_surface",
    "posterior_curve",
    "render_curve",
    "scatter_from_dataset",
    "GAP_SIZES",
    "PAPER_CONVENTIONAL",
    "PAPER_GAPS",
    "PAPER_TABLE1",
    "gaps_markdown",
    "markdown_report",
    "table1_markdown",
    "GapCell",
    "benchmark_gaps",
    "render_gap_table",
    "soundness_by_gap",
    "METHODS",
    "MODES",
    "SOUNDNESS_SIZES",
    "BenchmarkRun",
    "conventional_label",
    "render_table1",
    "run_benchmark",
    "run_table1",
]
