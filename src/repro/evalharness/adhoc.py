"""Ad-hoc benchmark specs for user-submitted program source.

The untrusted-source path (``POST /analyze`` with ``{"source": ...}``,
``hybrid-aara analyze --source``) reuses the whole evaluation pipeline by
wrapping arbitrary source in a synthetic :class:`BenchmarkSpec` named
``user:<sha12>`` — a content address over the *normalized* source, so
textually equivalent submissions (trailing whitespace, CRLF line endings)
collapse onto one spec, one task id, and one result-cache entry.

Input generation is type-directed: the simple type checker infers the
entry function's parameter types and :func:`generate_value` draws small
structured values for them, which is enough runtime data for the
data-driven methods without asking the submitter for a generator.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

from ..lang import ast as A
from ..lang import compile_program
from ..lang.values import UNIT_VALUE, VInl, VList, VTuple, Value
from ..suite.registry import BenchmarkSpec, all_benchmarks

#: canonical data-collection protocol for ad-hoc programs: small sizes,
#: a couple of repetitions — enough signal for the regression methods,
#: cheap enough that a budgeted hostile run aborts in well under a second
ADHOC_DATA_SIZES: Tuple[int, ...] = (2, 4, 6, 8)
ADHOC_REPETITIONS = 2
ADHOC_DEFAULT_DEGREE = 2


def normalize_source(source: str) -> str:
    """Whitespace-normal form: LF line endings, no trailing whitespace,
    no blank edge lines, exactly one trailing newline."""
    lines = [line.rstrip() for line in source.replace("\r\n", "\n").replace("\r", "\n").split("\n")]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def source_digest(source: str) -> str:
    """SHA-256 of the normalized source (the content address)."""
    return hashlib.sha256(normalize_source(source).encode()).hexdigest()


def adhoc_name(source: str) -> str:
    """Synthetic benchmark name for ad-hoc source: ``user:<sha12>``."""
    return f"user:{source_digest(source)[:12]}"


def match_registry_source(source: str, mode: str = "data-driven") -> Optional[Tuple[str, str]]:
    """``(benchmark, entry)`` when normalized ``source`` is byte-identical
    to a suite benchmark's variant for ``mode``.

    This is what makes source↔benchmark submissions share a cache entry:
    a matching source is re-routed onto the benchmark-name path, so the
    resulting task (and cache key, and bounds) is *the same object* the
    batch harness produces.
    """
    digest = source_digest(source)
    for spec in all_benchmarks():
        if mode == "hybrid":
            if spec.hybrid_source is not None and source_digest(spec.hybrid_source) == digest:
                return spec.name, spec.hybrid_entry
        elif source_digest(spec.data_driven_source) == digest:
            return spec.name, spec.data_driven_entry
    return None


def generate_value(ty: A.Type, rng: np.random.Generator, n: int) -> Value:
    """Draw one value of type ``ty`` at canonical size ``n``."""
    if isinstance(ty, A.TList):
        inner = max(1, n // 2) if isinstance(ty.elem, (A.TList, A.TProd)) else n
        return VList(tuple(generate_value(ty.elem, rng, inner) for _ in range(n)))
    if isinstance(ty, A.TProd):
        return VTuple(tuple(generate_value(item, rng, n) for item in ty.items))
    if isinstance(ty, A.TSum):
        return VInl(generate_value(ty.left, rng, n))
    if isinstance(ty, A.TBool):
        return bool(rng.integers(0, 2))
    if isinstance(ty, A.TUnit):
        return UNIT_VALUE
    # ints and unconstrained type variables: small non-negative integers
    return int(rng.integers(0, n + 1))


def default_entry(program: A.Program) -> str:
    """The last top-level definition (the OCaml main-function convention)."""
    return list(program)[-1].name


def adhoc_spec(
    source: str,
    entry: Optional[str] = None,
    degree: Optional[int] = None,
    budget=None,
) -> BenchmarkSpec:
    """Wrap arbitrary source as a synthetic benchmark spec.

    Compiles under ``budget`` to infer the entry's parameter types for
    the input generator; front-end failures propagate as the usual
    :class:`~repro.errors.SourceError` family (classified, never raised
    past the task executor).
    """
    program = compile_program(source, budget=budget)
    if entry is None:
        entry = default_entry(program)
    if entry not in program:
        from ..errors import ReproError

        raise ReproError(f"entry function {entry!r} not defined in submitted source")
    param_types = program[entry].fun_type.params

    def generator(rng: np.random.Generator, n: int) -> List[Value]:
        return [generate_value(ty, rng, n) for ty in param_types]

    def shape_fn(n: int) -> List[Value]:
        shape_rng = np.random.default_rng(0)
        return [generate_value(ty, shape_rng, n) for ty in param_types]

    normalized = normalize_source(source)
    return BenchmarkSpec(
        name=adhoc_name(source),
        data_driven_source=normalized,
        data_driven_entry=entry,
        hybrid_source=None,
        hybrid_entry=None,
        degree=ADHOC_DEFAULT_DEGREE if degree is None else int(degree),
        truth=lambda n: float("nan"),  # no ground truth for user programs
        shape_fn=shape_fn,
        generator=generator,
        data_sizes=ADHOC_DATA_SIZES,
        repetitions=ADHOC_REPETITIONS,
        expected_conventional="unknown",
        notes="ad-hoc user-submitted source",
    )
