"""Figures 1, 2, 6, 7 and Appendix C plots: bound-curve series.

Rather than producing images, the harness emits the numeric series the
figures plot — runtime-data scatter, the true bound, and the posterior
median with a 10–90th-percentile band — which is what "regenerating a
figure" means for a text harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .runner import METHODS, MODES
from .table1 import BenchmarkRun
from ..aara.bound import synthetic_list
from ..inference import PosteriorResult
from ..inference.dataset import RuntimeDataset

CURVE_PERCENTILES = (10, 50, 90)


@dataclass
class CurveSeries:
    """The data behind one panel of Fig. 6 (or Fig. 1)."""

    benchmark: str
    mode: str
    method: str
    sizes: List[int]
    truth: List[float]
    median: List[float]
    band_low: List[float]
    band_high: List[float]
    #: runtime scatter (size, cost) pairs for the analyzed entry
    scatter: List[Tuple[float, float]] = field(default_factory=list)

    def sound_fraction_on_sizes(self) -> float:
        median = np.array(self.median)
        truth = np.array(self.truth)
        return float(np.mean(median >= truth - 1e-9))


def scatter_from_dataset(dataset: RuntimeDataset, label: Optional[str] = None):
    """(scalar size, cost) pairs for plotting runtime data."""
    points = []
    labels = [label] if label else dataset.labels()
    for lab in labels:
        for obs in dataset[lab]:
            key = obs.size_key()
            size = key[0] if key else 0
            points.append((float(size), float(obs.cost)))
    return points


def posterior_curve(
    run: BenchmarkRun,
    mode: str,
    method: str,
    sizes: Sequence[int],
    percentiles: Sequence[int] = CURVE_PERCENTILES,
) -> Optional[CurveSeries]:
    result = run.results.get((mode, method))
    if result is None:
        return None
    bands = result.percentile_curves(sizes, tuple(percentiles), run.spec.shape_fn)
    low, mid, high = (bands[p] for p in percentiles)
    scatter = []
    dataset = run.datasets.get(mode)
    if dataset is not None:
        try:
            scatter = scatter_from_dataset(dataset)
        except Exception:
            scatter = []
    return CurveSeries(
        run.spec.name,
        mode,
        method,
        list(sizes),
        [run.spec.truth(n) for n in sizes],
        mid,
        low,
        high,
        scatter,
    )


def fig6_curves(run: BenchmarkRun, sizes: Sequence[int]) -> List[CurveSeries]:
    """All six panels (3 methods × up to 2 modes) for one benchmark."""
    out = []
    for mode in MODES:
        for method in METHODS:
            series = posterior_curve(run, mode, method, sizes)
            if series is not None:
                out.append(series)
    return out


def failed_panels(run: BenchmarkRun) -> List[Tuple[str, str, Dict[str, object]]]:
    """Provenance for the panels :func:`fig6_curves` had to skip.

    Returns ``(mode, method, failure)`` triples so figure consumers can
    footnote missing panels instead of silently dropping them.
    """
    out: List[Tuple[str, str, Dict[str, object]]] = []
    for mode in MODES:
        for method in METHODS:
            if (mode, method) in run.errors:
                out.append((mode, method, dict(run.failures.get((mode, method)) or {})))
    return out


# ---------------------------------------------------------------------------
# Fig. 7: multivariate bound surfaces for MapAppend
# ---------------------------------------------------------------------------


@dataclass
class Surface:
    benchmark: str
    mode: str
    method: str
    grid1: List[int]
    grid2: List[int]
    truth: List[List[float]]  # truth[i][j] at (grid1[i], grid2[j])
    median: List[List[float]]


def mapappend_surface(
    run: BenchmarkRun, mode: str, method: str, grid: Sequence[int] = tuple(range(0, 41, 8))
) -> Optional[Surface]:
    """Median-bound surface over (|xs|, |ys|) for MapAppend (Fig. 7)."""
    result = run.results.get((mode, method))
    if result is None:
        return None
    grid = list(grid)
    median = []
    truth = []
    for n1 in grid:
        row = []
        truth_row = []
        for n2 in grid:
            args = [synthetic_list(n1), synthetic_list(n2)]
            values = [bound.evaluate(args) for bound in result.bounds]
            row.append(float(np.median(values)))
            truth_row.append(1.0 * n1)
        median.append(row)
        truth.append(truth_row)
    return Surface(run.spec.name, mode, method, grid, grid, truth, median)


def render_curve(series: CurveSeries, width: int = 8) -> str:
    lines = [
        f"{series.benchmark} [{series.mode} / {series.method}]",
        f"{'size':>6s} {'truth':>10s} {'p10':>10s} {'median':>10s} {'p90':>10s}",
    ]
    for i, n in enumerate(series.sizes):
        lines.append(
            f"{n:>6d} {series.truth[i]:>10.1f} {series.band_low[i]:>10.1f} "
            f"{series.median[i]:>10.1f} {series.band_high[i]:>10.1f}"
        )
    return "\n".join(lines)
