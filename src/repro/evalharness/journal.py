"""Write-ahead run journal: the durable record of one evaluation run.

Every journalled ``bench`` invocation gets a run directory
(``runs/<run-id>/``) holding a single append-only ``journal.jsonl``.
Before the grid starts, the journal records the run header — CLI
parameters, the expanded task grid, and the same config signature the
result cache keys on.  As the run progresses it records each task's
dispatch (``task-start``) and, crucially, each finished task's **full
outcome** (``task-finish``) the moment the runner learns it.  The
journal is therefore a write-ahead log of the run: no matter where a
SIGKILL lands, every completed cell survives on disk.

``bench resume <run-id>`` replays the journal (:func:`replay`), verifies
the config signature still matches, preloads completed outcomes into the
runner, and re-executes only unfinished or failed cells — with
rng-identical results, since each cell's seed is derived from the grid
position, not from run-global state.

Durability discipline matches the telemetry sink: records are single
``os.write`` calls on an ``O_APPEND`` descriptor, so concurrent writers
cannot interleave bytes and a kill can at worst tear the final line —
which :func:`replay` tolerates (the torn record's task simply reruns).
A full disk (real, or injected via the ``journal-enospc`` fault) degrades
the journal to a warn-once no-op rather than killing the run: losing
resumability must never lose the run itself.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import faultinject, telemetry
from ..telemetry.console import get_console

JOURNAL_NAME = "journal.jsonl"
#: subdirectory of the run dir holding sampler chain checkpoints
CHECKPOINTS_NAME = "checkpoints"


def new_run_id() -> str:
    """A sortable, collision-free run id: UTC timestamp + random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{os.urandom(3).hex()}"


class RunJournal:
    """Append-only event log for one run directory."""

    def __init__(self, run_dir: os.PathLike, run_id: Optional[str] = None):
        self.run_dir = str(run_dir)
        self.run_id = run_id or os.path.basename(self.run_dir)
        os.makedirs(self.run_dir, exist_ok=True)
        self.path = os.path.join(self.run_dir, JOURNAL_NAME)
        self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        self._degraded = False

    @property
    def checkpoints_dir(self) -> str:
        return os.path.join(self.run_dir, CHECKPOINTS_NAME)

    # -- record types -------------------------------------------------------

    def run_start(
        self,
        params: Dict[str, Any],
        signature: Dict[str, Any],
        grid: List[str],
    ) -> None:
        self.record(
            {
                "ev": "run-start",
                "run_id": self.run_id,
                "ts": time.time(),
                "params": params,
                "signature": signature,
                "grid": grid,
            }
        )

    def run_resume(self, completed: int, remaining: int) -> None:
        self.record(
            {
                "ev": "run-resume",
                "run_id": self.run_id,
                "ts": time.time(),
                "completed": completed,
                "remaining": remaining,
            }
        )

    def task_start(self, task_id: str, attempt: int = 0) -> None:
        self.record({"ev": "task-start", "task": task_id, "attempt": attempt, "ts": time.time()})

    def task_finish(self, task_id: str, outcome: Dict[str, Any]) -> None:
        self.record({"ev": "task-finish", "task": task_id, "ts": time.time(), "outcome": outcome})

    def shutdown(self, reason: str) -> None:
        self.record({"ev": "shutdown", "reason": reason, "ts": time.time()})

    def run_finish(self, status: str) -> None:
        self.record({"ev": "run-finish", "status": status, "ts": time.time()})

    # -- plumbing -----------------------------------------------------------

    def record(self, event: Dict[str, Any]) -> None:
        """Append one event as a single atomic write; degrade on I/O failure."""
        if self._degraded:
            return
        line = (json.dumps(event, sort_keys=True) + "\n").encode()
        try:
            if faultinject.fault_point(faultinject.JOURNAL_ENOSPC, key=event.get("ev", "")):
                raise OSError(28, "No space left on device (injected)")
            os.write(self._fd, line)
        except OSError as exc:
            # a full disk must not kill the run — it only costs resumability
            self._degraded = True
            telemetry.counter("journal.append_errors", 1)
            get_console().warn(
                f"run journal degraded ({exc}); this run will not be resumable from here on"
            )

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReplay:
    """What a journal says happened: header + per-task progress."""

    run_id: str
    header: Optional[Dict[str, Any]]
    #: task id → outcome dict for every journalled task-finish (last wins)
    finished: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: task ids with a task-start record
    started: List[str] = field(default_factory=list)
    shutdowns: List[str] = field(default_factory=list)
    resumes: int = 0
    run_finished: bool = False
    #: the final line was torn by a mid-write kill (its task simply reruns)
    torn: bool = False

    @property
    def grid(self) -> List[str]:
        return list(self.header.get("grid", [])) if self.header else []

    @property
    def signature(self) -> Dict[str, Any]:
        return dict(self.header.get("signature", {})) if self.header else {}

    @property
    def params(self) -> Dict[str, Any]:
        return dict(self.header.get("params", {})) if self.header else {}

    def completed_ok(self) -> Dict[str, Dict[str, Any]]:
        """Outcomes safe to reuse on resume (failed cells re-execute)."""
        return {
            task: outcome
            for task, outcome in self.finished.items()
            if outcome.get("ok")
        }


def _dir_size(path: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:
                pass
    return total


def gc_runs(
    runs_root: os.PathLike,
    max_age_seconds: Optional[float] = None,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
) -> Dict[str, int]:
    """Prune old run directories by age and a total-size cap.

    Mirrors ``ResultCache.gc``: runs whose journal is older than
    ``max_age_seconds`` are removed first, then the oldest remaining runs
    are evicted until the total footprint fits under ``max_bytes``.  Only
    directories that actually contain a ``journal.jsonl`` are candidates;
    anything else under the runs root is left alone (and counted as
    ``skipped``).  Removal is atomic per run: the directory is renamed to
    ``<name>.trash.<pid>`` first, so a crash mid-delete can never leave a
    half-deleted run that still looks resumable.  ``dry_run`` reports
    what *would* happen without touching the filesystem.
    """
    root = str(runs_root)
    stats = {"kept": 0, "removed": 0, "skipped": 0, "bytes": 0, "bytes_removed": 0}
    if not os.path.isdir(root):
        return stats
    now = time.time()
    candidates = []  # (journal mtime, size, run dir path)
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            stats["skipped"] += 1
            continue
        journal_path = os.path.join(path, JOURNAL_NAME)
        if not os.path.isfile(journal_path):
            stats["skipped"] += 1
            continue
        try:
            mtime = os.path.getmtime(journal_path)
        except OSError:
            stats["skipped"] += 1
            continue
        candidates.append((mtime, _dir_size(path), path))

    def _remove(path: str, size: int) -> None:
        stats["removed"] += 1
        stats["bytes_removed"] += size
        if dry_run:
            return
        trash = f"{path}.trash.{os.getpid()}"
        try:
            os.replace(path, trash)
        except OSError:
            return
        shutil.rmtree(trash, ignore_errors=True)

    survivors = []
    for mtime, size, path in candidates:
        if max_age_seconds is not None and now - mtime > max_age_seconds:
            _remove(path, size)
        else:
            survivors.append((mtime, size, path))
    total = sum(size for _mtime, size, _path in survivors)
    if max_bytes is not None and total > max_bytes:
        survivors.sort()  # oldest first
        while survivors and total > max_bytes:
            _mtime, size, path = survivors.pop(0)
            _remove(path, size)
            total -= size
    stats["kept"] = len(survivors)
    stats["bytes"] = total
    if stats["removed"] and not dry_run:
        telemetry.counter("runs.gc_removed", stats["removed"])
    return stats


def replay(run_dir: os.PathLike) -> JournalReplay:
    """Reconstruct run progress from a journal, tolerating a torn tail."""
    run_dir = str(run_dir)
    path = os.path.join(run_dir, JOURNAL_NAME)
    out = JournalReplay(run_id=os.path.basename(run_dir), header=None)
    with open(path, "rb") as handle:
        lines = handle.read().split(b"\n")
    for index, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            event = json.loads(raw)
        except ValueError:
            # a kill mid-append can tear only the final line; anything else
            # is corruption we surface rather than silently skip
            if index >= len(lines) - 2:
                out.torn = True
                continue
            raise
        ev = event.get("ev")
        if ev == "run-start" and out.header is None:
            out.header = event
            out.run_id = event.get("run_id", out.run_id)
        elif ev == "task-start":
            out.started.append(event.get("task", ""))
        elif ev == "task-finish":
            outcome = event.get("outcome")
            if isinstance(outcome, dict):
                out.finished[event.get("task", "")] = outcome
        elif ev == "shutdown":
            out.shutdowns.append(event.get("reason", ""))
        elif ev == "run-resume":
            out.resumes += 1
        elif ev == "run-finish":
            out.run_finished = True
    telemetry.counter(
        "journal.replayed",
        1,
        finished=len(out.finished),
        torn=out.torn,
    )
    return out
