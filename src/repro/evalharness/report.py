"""Markdown report generation: paper-vs-measured for every experiment.

:func:`markdown_report` renders a full comparison document from a list of
:class:`~repro.evalharness.table1.BenchmarkRun` — the machinery behind
EXPERIMENTS.md.  Each Table 1 cell and each gap triple is printed next to
the paper's published value (from :mod:`.paper_reference`), together with
an agreement verdict on the *qualitative* claim (sound vs unsound, hybrid
vs data-driven ordering) rather than the absolute number.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .gaps import benchmark_gaps
from .paper_reference import PAPER_CONVENTIONAL, PAPER_GAPS, PAPER_TABLE1
from .table1 import METHODS, BenchmarkRun, _METHOD_LABEL, failure_note


def _fmt_pct(value: Optional[float]) -> str:
    return "∅" if value is None else f"{value:.1f}%"


def _fmt_gap(triple) -> str:
    if triple is None:
        return "∅"
    return "/".join(f"{v:.2f}" for v in triple)


def _agreement(paper: Optional[float], ours: Optional[float]) -> str:
    """Coarse agreement on the soundness *regime* of a Table 1 cell."""
    if paper is None or ours is None:
        return "—" if paper is None and ours is None else "✗"

    def regime(v: float) -> str:
        if v <= 5.0:
            return "unsound"
        if v >= 60.0:
            return "mostly-sound"
        return "mixed"

    return "✓" if regime(paper) == regime(ours) else "≈" if abs(paper - ours) <= 40 else "✗"


def table1_markdown(runs: Sequence[BenchmarkRun]) -> str:
    lines = [
        "| Benchmark | Conventional (paper / ours) | Method | DD sound (paper / ours) "
        "| Hybrid sound (paper / ours) | agree | DD time (ours) | Hy time (ours) |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for run in runs:
        name = run.spec.name
        paper_conv = PAPER_CONVENTIONAL.get(name, "?")
        for i, method in enumerate(METHODS):
            paper_row = PAPER_TABLE1.get(name, {}).get(method)
            p_dd, p_hy = (paper_row[0], paper_row[1]) if paper_row else (None, None)
            o_dd = run.soundness("data-driven", method)
            o_hy = run.soundness("hybrid", method)
            o_dd_pct = None if o_dd is None else 100 * o_dd
            o_hy_pct = None if o_hy is None else 100 * o_hy
            agree = _agreement(p_dd, o_dd_pct) + _agreement(p_hy, o_hy_pct)
            dd_t = run.runtime("data-driven", method)
            hy_t = run.runtime("hybrid", method)
            o_dd_str = "ERR" if ("data-driven", method) in run.errors else _fmt_pct(o_dd_pct)
            o_hy_str = "ERR" if ("hybrid", method) in run.errors else _fmt_pct(o_hy_pct)
            lines.append(
                f"| {name if i == 0 else ''} "
                f"| {(paper_conv + ' / ' + run.conventional_label) if i == 0 else ''} "
                f"| {_METHOD_LABEL[method]} "
                f"| {_fmt_pct(p_dd)} / {o_dd_str} "
                f"| {_fmt_pct(p_hy)} / {o_hy_str} "
                f"| {agree} "
                f"| {'-' if dd_t is None else f'{dd_t:.2f}s'} "
                f"| {'-' if hy_t is None else f'{hy_t:.2f}s'} |"
            )
    return "\n".join(lines)


def failures_markdown(runs: Sequence[BenchmarkRun]) -> str:
    """A provenance table for every failed cell (empty string if none)."""
    rows = []
    for run in runs:
        for key in sorted(run.failures):
            failure = run.failures[key]
            rows.append(
                f"| {run.spec.name}/{key[0]}/{key[1]} "
                f"| {failure.get('outcome', 'error')} "
                f"| {failure.get('stage', '?')} "
                f"| {failure.get('error_class', '?')} "
                f"| {failure.get('attempts', '?')} |"
            )
    if not rows:
        return ""
    return "\n".join(
        [
            "## Failures",
            "",
            "These cells did not produce a result; all other cells are "
            "unaffected (cells are computed independently).",
            "",
            "| Cell | Outcome | Stage | Error class | Attempts |",
            "|---|---|---|---|---|",
            *rows,
        ]
    )


def gaps_markdown(run: BenchmarkRun, sizes=(10, 1000)) -> str:
    name = run.spec.name
    cells = {(c.size, c.mode, c.method): c for c in benchmark_gaps(run, sizes)}
    lines = [
        f"#### {name} — relative estimation gaps (5th/50th/95th pct), paper vs ours",
        "",
        "| Size | Method | DD paper | DD ours | Hybrid paper | Hybrid ours |",
        "|---|---|---|---|---|---|",
    ]
    for size in sizes:
        paper_at = PAPER_GAPS.get(name, {}).get(size, {})
        for method in METHODS:
            paper_pair = paper_at.get(method)
            p_dd, p_hy = (paper_pair if paper_pair else (None, None))
            ours_dd = cells.get((size, "data-driven", method))
            ours_hy = cells.get((size, "hybrid", method))

            def fmt_ours(cell) -> str:
                if cell is None:
                    return "∅"
                return "/".join(f"{cell.percentiles[p]:.2f}" for p in (5, 50, 95))

            lines.append(
                f"| {size} | {_METHOD_LABEL[method]} "
                f"| {_fmt_gap(p_dd)} | {fmt_ours(ours_dd)} "
                f"| {_fmt_gap(p_hy)} | {fmt_ours(ours_hy)} |"
            )
    return "\n".join(lines)


def timing_markdown(metrics: Optional[Dict[str, Any]]) -> str:
    """A ``## Timing`` section from a runner metrics JSON (v2).

    Rows are Table 1 cells, columns the telemetry stages (span self-time
    recorded in each worker), so per-cell stage times sum to roughly the
    cell's wall clock.  Returns an empty string when the run carried no
    stage data (telemetry off, or an old metrics file).
    """
    if not metrics:
        return ""
    tasks = [t for t in metrics.get("tasks", []) if t.get("stages")]
    summary = metrics.get("summary", {})
    stage_totals = summary.get("stage_wall_seconds") or {}
    if not tasks or not stage_totals:
        return ""
    stages = sorted(stage_totals, key=lambda s: -stage_totals[s])
    lines = [
        "## Timing",
        "",
        f"(telemetry span self-times per stage; jobs = {metrics.get('jobs', '?')}, "
        f"task wall {summary.get('task_wall_seconds', 0.0):.2f}s, "
        f"queue wait {summary.get('queue_wait_seconds', 0.0):.2f}s)",
        "",
        "| Cell | wall (s) | " + " | ".join(stages) + " |",
        "|---|---|" + "---|" * len(stages),
    ]
    for task in sorted(tasks, key=lambda t: -(t.get("wall_seconds") or 0.0)):
        row = [str(task.get("task", "?")), f"{task.get('wall_seconds', 0.0):.2f}"]
        task_stages = task.get("stages") or {}
        for stage in stages:
            value = task_stages.get(stage)
            row.append("-" if value is None else f"{value:.2f}")
        lines.append("| " + " | ".join(row) + " |")
    total = ["**total**", f"{summary.get('task_wall_seconds', 0.0):.2f}"]
    total += [f"{stage_totals[stage]:.2f}" for stage in stages]
    lines.append("| " + " | ".join(total) + " |")
    return "\n".join(lines)


def markdown_report(
    runs: Sequence[BenchmarkRun],
    samples: int,
    seed: int,
    metrics: Optional[Dict[str, Any]] = None,
) -> str:
    chunks: List[str] = [
        "## Table 1 — fraction of sound inferred bounds",
        "",
        f"(our runs: M = {samples} posterior samples, seed = {seed}; soundness "
        "checked on all input sizes 1..1000 against the analytic ground truth; "
        "`agree` compares the qualitative regime per cell: data-driven then hybrid)",
        "",
        table1_markdown(runs),
        "",
        "## Tables 2–11 / Fig. 5 — relative estimation gaps",
        "",
    ]
    for run in runs:
        chunks.append(gaps_markdown(run))
        chunks.append("")
    failures = failures_markdown(runs)
    if failures:
        chunks.append(failures)
        chunks.append("")
    timing = timing_markdown(metrics)
    if timing:
        chunks.append(timing)
        chunks.append("")
    return "\n".join(chunks)
