"""Fig. 5 / Tables 2–11: relative estimation-gap percentiles.

For each benchmark, method and mode, reports the 5th/50th/95th percentile
of the relative gap ``(inferred bound − truth)/truth`` at input sizes
10, 100 and 1000 (the paper's canonical sizes).  A bound is sound at a
size iff its gap is ≥ 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import METHODS, MODES
from .table1 import BenchmarkRun, _METHOD_LABEL

GAP_SIZES = (10, 100, 1000)
GAP_PERCENTILES = (5, 50, 95)


@dataclass
class GapCell:
    size: int
    mode: str
    method: str
    percentiles: Dict[int, float]


def benchmark_gaps(
    run: BenchmarkRun,
    sizes: Sequence[int] = GAP_SIZES,
    percentiles: Sequence[int] = GAP_PERCENTILES,
) -> List[GapCell]:
    cells: List[GapCell] = []
    for size in sizes:
        for mode in MODES:
            for method in METHODS:
                result = run.results.get((mode, method))
                if result is None:
                    continue
                pct = result.gap_percentiles(
                    run.spec.truth, size, tuple(percentiles), run.spec.shape_fn
                )
                cells.append(GapCell(size, mode, method, pct))
    return cells


def render_gap_table(run: BenchmarkRun, sizes: Sequence[int] = GAP_SIZES) -> str:
    """One benchmark's gap table in the layout of the paper's Tables 2–11."""
    cells = benchmark_gaps(run, sizes)
    by_key: Dict[Tuple[int, str, str], GapCell] = {
        (c.size, c.mode, c.method): c for c in cells
    }
    header = (
        f"{'Size':>6s} {'Method':8s} | "
        f"{'DD 5th':>9s} {'DD 50th':>9s} {'DD 95th':>9s} | "
        f"{'Hy 5th':>9s} {'Hy 50th':>9s} {'Hy 95th':>9s}"
    )
    lines = [f"Relative estimation gaps — {run.spec.name}", header, "-" * len(header)]

    def fmt(cell: Optional[GapCell], p: int, mode: str, method: str) -> str:
        if cell is None:
            # distinguish "this cell failed" from "this cell was not run"
            return "ERR" if (mode, method) in run.errors else "∅"
        return f"{cell.percentiles[p]:.2f}"

    for size in sizes:
        for i, method in enumerate(METHODS):
            dd = by_key.get((size, "data-driven", method))
            hy = by_key.get((size, "hybrid", method))
            label = str(size) if i == 0 else ""
            lines.append(
                f"{label:>6s} {_METHOD_LABEL[method]:8s} | "
                f"{fmt(dd, 5, 'data-driven', method):>9s} "
                f"{fmt(dd, 50, 'data-driven', method):>9s} "
                f"{fmt(dd, 95, 'data-driven', method):>9s} | "
                f"{fmt(hy, 5, 'hybrid', method):>9s} "
                f"{fmt(hy, 50, 'hybrid', method):>9s} "
                f"{fmt(hy, 95, 'hybrid', method):>9s}"
            )
    return "\n".join(lines)


def soundness_by_gap(run: BenchmarkRun, size: int, mode: str, method: str) -> Optional[float]:
    """Fraction of bounds whose gap at ``size`` is non-negative."""
    result = run.results.get((mode, method))
    if result is None:
        return None
    gaps = result.relative_gaps(run.spec.truth, size, run.spec.shape_fn)
    if gaps.size == 0:
        return None
    return float((gaps >= -1e-9).mean())
