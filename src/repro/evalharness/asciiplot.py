"""Minimal ASCII plotting for bound curves (the figures, in a terminal).

Renders a :class:`~repro.evalharness.curves.CurveSeries` — runtime-data
scatter, true bound, posterior median and band — as a character grid, the
way the paper's Figs. 1 and 6 look, without any plotting dependency.

Glyphs: ``.`` runtime data, ``T`` true bound, ``m`` posterior median,
``-`` 10–90th band, ``#`` median on top of the true bound.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .curves import CurveSeries


def _scale(value: float, lo: float, hi: float, cells: int) -> Optional[int]:
    if hi <= lo:
        return 0
    t = (value - lo) / (hi - lo)
    if t < 0 or t > 1:
        return None
    return min(cells - 1, int(t * (cells - 1) + 0.5))


def render_ascii_curve(
    series: CurveSeries,
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
) -> str:
    """Render one panel as text; returns a multi-line string."""
    xs = series.sizes
    x_lo, x_hi = float(min(xs)), float(max(xs))
    values = list(series.truth) + list(series.band_high) + [c for _s, c in series.scatter]
    values = [v for v in values if v > 0 or not log_y]
    y_hi = max(values) if values else 1.0
    y_lo = 0.0
    transform = (lambda v: math.log10(max(v, 1e-9))) if log_y else (lambda v: v)
    if log_y:
        y_lo = transform(max(min((v for v in values if v > 0), default=1.0), 1e-3))
        y_hi = transform(y_hi)

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str, overwrite: bool = True) -> None:
        col = _scale(x, x_lo, x_hi, width)
        row = _scale(transform(y), y_lo, y_hi, height)
        if col is None or row is None:
            return
        r = height - 1 - row
        if overwrite or grid[r][col] == " ":
            grid[r][col] = glyph

    # band first (lowest priority), then scatter, truth, median
    for i, n in enumerate(xs):
        lo_v, hi_v = series.band_low[i], series.band_high[i]
        col = _scale(float(n), x_lo, x_hi, width)
        r_lo = _scale(transform(max(lo_v, y_lo if log_y else 0.0)), y_lo, y_hi, height)
        r_hi = _scale(transform(hi_v), y_lo, y_hi, height)
        if col is not None and r_lo is not None and r_hi is not None:
            for row in range(min(r_lo, r_hi), max(r_lo, r_hi) + 1):
                grid[height - 1 - row][col] = "-"
    for size, cost in series.scatter:
        plot(size, cost, ".", overwrite=False)
    for i, n in enumerate(xs):
        plot(float(n), series.truth[i], "T")
    for i, n in enumerate(xs):
        col = _scale(float(n), x_lo, x_hi, width)
        row = _scale(transform(series.median[i]), y_lo, y_hi, height)
        if col is not None and row is not None:
            r = height - 1 - row
            grid[r][col] = "#" if grid[r][col] == "T" else "m"

    header = (
        f"{series.benchmark} [{series.mode}/{series.method}]"
        f"   y: 0..{max(values):.0f}{' (log)' if log_y else ''}   x: {int(x_lo)}..{int(x_hi)}"
    )
    legend = "legend: . data   T truth   m median   - 10-90% band   # median==truth"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return "\n".join([header, border, body, border, legend])


def render_hbar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "s",
) -> str:
    """Horizontal bar chart for labeled magnitudes (stage time breakdowns).

    Bars are scaled to the largest value; each row also prints the value
    and its share of the total, e.g.::

        lp       ######################## 10.21s  61.3%
        sampler  ########                  3.14s  18.9%
    """
    rows = [(str(label), max(0.0, float(value))) for label, value in rows]
    if not rows:
        return "(no data)"
    peak = max(value for _label, value in rows) or 1.0
    total = sum(value for _label, value in rows) or 1.0
    label_w = max(len(label) for label, _value in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0, int(round(width * value / peak)))
        lines.append(
            f"{label:{label_w}s} {bar:{width}s} {value:8.2f}{unit} {100 * value / total:5.1f}%"
        )
    return "\n".join(lines)


def render_panels(
    panels: Sequence[Tuple[str, CurveSeries]],
    width: int = 72,
    height: int = 18,
    log_y: bool = False,
) -> str:
    chunks: List[str] = []
    for title, series in panels:
        chunks.append(f"=== {title} ===")
        chunks.append(render_ascii_curve(series, width, height, log_y))
        chunks.append("")
    return "\n".join(chunks)
