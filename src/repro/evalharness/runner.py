"""Task-graph executor for the Section 7 evaluation grid.

The paper's evaluation is a benchmark × method × mode grid (Table 1:
10 programs × {Opt, BayesWC, BayesPC} × {data-driven, hybrid}).  Every
cell is an independent :class:`EvalTask`; this module expands the grid,
derives a deterministic per-task seed from ``(root_seed, benchmark,
method, mode)``, executes the tasks — in-process for ``jobs=1``, on a
``ProcessPoolExecutor`` otherwise — memoizes completed tasks in a
content-addressed on-disk cache, and records per-task timing/RSS/retry
metadata in a structured metrics report.

Layering: this module knows nothing about :class:`BenchmarkRun`
assembly or rendering; ``table1.py`` builds runs from the JSON-safe
task outcomes returned here, and ``curves.py`` / ``gaps.py`` consume
the canonical grid constants (:data:`METHODS`, :data:`MODES`) below.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import hashlib
import json
import os
import resource
import signal
import sys
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import backoff, checkpoint, faultinject, telemetry
from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..errors import LintError, ReproError, TaskTimeoutError, failure_stage
from ..telemetry.console import get_console
from .journal import RunJournal

#: the canonical Table 1 grid axes — the single source of truth for the
#: whole evalharness (table1/curves/gaps import these)
METHODS = ("opt", "bayeswc", "bayespc")
MODES = ("data-driven", "hybrid")

#: bump whenever an analysis-affecting code change should invalidate the
#: on-disk result cache (v4: entries carry a payload checksum)
CACHE_VERSION = 4


def max_rss_kb(raw: Optional[int] = None, platform: Optional[str] = None) -> int:
    """Peak RSS of this process in KiB, portably.

    ``getrusage().ru_maxrss`` is KiB on Linux but *bytes* on macOS
    (and KiB on the BSDs) — normalize so metrics JSON is comparable
    across platforms.  ``raw``/``platform`` exist for unit tests.
    """
    if raw is None:
        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if (platform or sys.platform) == "darwin":
        return int(raw) // 1024
    return int(raw)


class _WatchdogExpired(BaseException):
    """Raised by the serial watchdog's SIGALRM handler.

    Derives from :class:`BaseException` on purpose: the worker body
    (``execute_task``) converts any ``Exception`` into a recorded error
    outcome, which would swallow the timeout — a watchdog expiry must
    always reach the runner's retry loop.
    """


# ---------------------------------------------------------------------------
# Deterministic seed derivation
# ---------------------------------------------------------------------------


def derive_seed(root_seed: int, *parts: object) -> int:
    """A stable 63-bit seed from ``(root_seed, *parts)``.

    Uses SHA-256 rather than Python's ``hash()`` so the derivation is
    identical across interpreter sessions and worker processes
    (``hash()`` of strings is salted per-process by PYTHONHASHSEED).
    Delegates to :func:`repro.backoff.derive_u63` so the runner and the
    server share one derivation.
    """
    return backoff.derive_u63(root_seed, *parts)


def input_seed(root_seed: int, benchmark: str) -> int:
    """Seed for a benchmark's runtime-data inputs (shared by all modes)."""
    return derive_seed(root_seed, benchmark, "inputs")


def method_seed(root_seed: int, benchmark: str, mode: str, method: str) -> int:
    """Seed for one (benchmark, mode, method) sampler."""
    return derive_seed(root_seed, benchmark, mode, method)


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvalTask:
    """One independent unit of the evaluation grid.

    Tasks reference benchmarks by registry name (the specs themselves
    hold lambdas and cannot cross a process boundary) and carry the
    *base* config; the per-mode config (degree, theta0) is derived in
    the worker via ``spec.config``.
    """

    kind: str  # 'conventional' | 'analysis'
    benchmark: str
    root_seed: int
    config: AnalysisConfig = DEFAULT_CONFIG
    mode: Optional[str] = None  # analysis tasks only
    method: Optional[str] = None  # analysis tasks only
    conventional_max_degree: int = 3
    #: ad-hoc source tasks (untrusted-source path): when ``source`` is
    #: set, ``benchmark`` is the synthetic content address ``user:<sha12>``
    #: and the worker builds a spec from the source itself (see
    #: :mod:`repro.evalharness.adhoc`) instead of the suite registry
    source: Optional[str] = None
    entry: Optional[str] = None
    degree: Optional[int] = None

    @property
    def task_id(self) -> str:
        if self.kind == "conventional":
            return f"{self.benchmark}/static/aara"
        return f"{self.benchmark}/{self.mode}/{self.method}"

    @property
    def seed(self) -> int:
        if self.kind == "conventional":
            return 0  # static analysis consumes no randomness
        return method_seed(self.root_seed, self.benchmark, self.mode, self.method)


def expand_grid(
    specs: Sequence[object],
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    modes: Sequence[str] = MODES,
    conventional_max_degree: int = 3,
) -> List[EvalTask]:
    """All tasks for a benchmark subset: one conventional verdict per
    spec plus one analysis task per available (mode, method) cell."""
    tasks: List[EvalTask] = []
    for spec in specs:
        tasks.append(
            EvalTask(
                kind="conventional",
                benchmark=spec.name,
                root_seed=seed,
                config=config,
                conventional_max_degree=conventional_max_degree,
            )
        )
        for mode in modes:
            if mode == "hybrid" and spec.hybrid_source is None:
                continue
            for method in methods:
                tasks.append(
                    EvalTask(
                        kind="analysis",
                        benchmark=spec.name,
                        root_seed=seed,
                        config=config,
                        mode=mode,
                        method=method,
                        conventional_max_degree=conventional_max_degree,
                    )
                )
    return tasks


# ---------------------------------------------------------------------------
# Worker-side execution (must stay module-level: it crosses the pool)
# ---------------------------------------------------------------------------

#: worker-local memoization so the 3 methods sharing one (benchmark, mode)
#: don't recompile the program / re-interpret the runtime-data runs
_PROGRAM_CACHE: Dict[Tuple[str, str], object] = {}
_DATASET_CACHE: Dict[Tuple[str, str, int], object] = {}
#: (benchmark, mode) -> lint verdict, so the lint guard runs once per
#: worker per program variant, not once per grid cell
_LINT_CACHE: Dict[Tuple[str, str], object] = {}


def _lint_guard(spec, mode: str, budget=None) -> None:
    """Reject programs with lint *errors* before compiling them.

    Memoized alongside the program cache; boundability predictions
    (``R042``/``R043``) are excluded — they are the conventional
    analyzer's verdict to make (``status='unboundable'``), and data-driven
    modes can still measure such programs.
    """
    from ..analysis import lint_source

    key = (spec.name, mode, budget)
    with telemetry.span(
        "lint.guard", benchmark=spec.name, mode=mode, cached=key in _LINT_CACHE
    ):
        if key not in _LINT_CACHE:
            source, entry = _mode_variant(spec, mode)
            path = f"{spec.name}/{mode}"
            result = lint_source(source, path=path, entry=entry, budget=budget)
            _LINT_CACHE[key] = result
    result = _LINT_CACHE[key]
    fatal = [d for d in result.errors() if d.code not in ("R042", "R043")]
    if fatal:
        first = fatal[0]
        raise LintError(
            f"lint failed for {spec.name}/{mode}: "
            f"[{first.code}] {first.message} at {first.location()}",
            diagnostics=fatal,
        )


#: worker-local ad-hoc spec memo: (source digest, entry, degree, budget)
_ADHOC_CACHE: Dict[Tuple, object] = {}


def _adhoc_spec_cached(task: "EvalTask"):
    """Build (and memoize) the synthetic spec for a source task."""
    from .adhoc import adhoc_spec, source_digest

    key = (source_digest(task.source), task.entry, task.degree, task.config.budget)
    if key not in _ADHOC_CACHE:
        _ADHOC_CACHE[key] = adhoc_spec(
            task.source, task.entry, degree=task.degree, budget=task.config.budget
        )
    return _ADHOC_CACHE[key]


def _mode_variant(spec, mode: str) -> Tuple[str, str]:
    if mode == "hybrid":
        if spec.hybrid_source is None:
            raise ReproError(f"benchmark {spec.name} has no hybrid variant")
        return spec.hybrid_source, spec.hybrid_entry
    return spec.data_driven_source, spec.data_driven_entry


def _compiled_program(spec, mode: str, budget=None):
    from ..lang import compile_program

    key = (spec.name, mode, budget)
    # the span is emitted even on a memo hit (dur ≈ 0, cached=True) so
    # every cell's trace shows the full stage pipeline, not just the
    # first cell each worker happened to compile for
    with telemetry.span(
        "lang.compile", benchmark=spec.name, mode=mode, cached=key in _PROGRAM_CACHE
    ):
        if key not in _PROGRAM_CACHE:
            _lint_guard(spec, mode, budget=budget)
            source, _entry = _mode_variant(spec, mode)
            _PROGRAM_CACHE[key] = compile_program(source, budget=budget)
    return _PROGRAM_CACHE[key]


def _mode_dataset(spec, mode: str, root_seed: int, budget=None):
    from ..inference import collect_dataset

    key = (spec.name, mode, root_seed, budget)
    with telemetry.span(
        "data.dataset", benchmark=spec.name, mode=mode, cached=key in _DATASET_CACHE
    ):
        if key not in _DATASET_CACHE:
            rng = np.random.default_rng(input_seed(root_seed, spec.name))
            inputs = spec.inputs(rng)
            program = _compiled_program(spec, mode, budget=budget)
            _source, entry = _mode_variant(spec, mode)
            _DATASET_CACHE[key] = collect_dataset(program, entry, inputs, budget=budget)
    return _DATASET_CACHE[key]


def _verdict_to_json(verdict) -> Dict[str, Any]:
    from ..inference.serialize import bound_to_json

    return {
        "status": verdict.status,
        "degree": verdict.degree,
        "detail": verdict.detail,
        "runtime_seconds": verdict.runtime_seconds,
        "feasible_degrees": list(verdict.feasible_degrees),
        "bound": None if verdict.bound is None else bound_to_json(verdict.bound),
    }


def verdict_from_json(data: Dict[str, Any]):
    from ..aara.analyze import ConventionalVerdict
    from ..inference.serialize import bound_from_json

    return ConventionalVerdict(
        status=data["status"],
        bound=None if data.get("bound") is None else bound_from_json(data["bound"]),
        degree=int(data.get("degree", 0)),
        detail=data.get("detail", ""),
        runtime_seconds=float(data.get("runtime_seconds", 0.0)),
        feasible_degrees=tuple(data.get("feasible_degrees", ())),
    )


def execute_task(task: EvalTask) -> Dict[str, Any]:
    """Run one task and return a JSON-safe outcome (runs in a worker).

    ``ReproError`` (infeasible LPs, sampler failures, …) is an expected
    per-cell outcome and is recorded, not raised; any other exception is
    captured as an error outcome so a deterministic bug in one cell
    cannot poison the pool or trigger pointless retries.

    Outcomes carry error provenance: ``outcome`` is one of ``ok`` /
    ``error`` / ``crash`` / ``timeout``, and failed cells get a
    ``failure`` dict recording the pipeline stage, the error class, the
    attempt count (patched in by the runner) and the elapsed time.
    """
    from ..suite import get_benchmark

    telemetry.ensure_from_env()
    checkpoint.ensure_from_env()
    started = time.perf_counter()
    started_ts = time.time()
    outcome: Dict[str, Any] = {
        "task": task.task_id,
        "kind": task.kind,
        "benchmark": task.benchmark,
        "mode": task.mode,
        "method": task.method,
        "seed": task.seed,
        "ok": False,
        "outcome": "ok",
        "error": None,
        "failure": None,
        "result": None,
        "verdict": None,
    }
    accumulator = telemetry.stage_totals()
    with contextlib.ExitStack() as stack:
        if accumulator is not None:
            stack.enter_context(accumulator)
        # namespace sampler chain checkpoints under this grid cell (no-op
        # unless REPRO_CHECKPOINT is active for this run)
        stack.enter_context(checkpoint.task_scope(task.task_id))
        stack.enter_context(
            telemetry.span(
                "runner.task",
                stage="task",
                task=task.task_id,
                kind=task.kind,
                benchmark=task.benchmark,
                mode=task.mode,
                method=task.method,
                seed=task.seed,
                attempt_pid=os.getpid(),
            )
        )
        # fault-injection points sit *outside* the try block: an injected
        # crash must look like a real worker death (retried by the runner),
        # not like a recorded per-cell analysis error
        faultinject.fault_point(faultinject.WORKER_CRASH, task.task_id)
        faultinject.fault_point(faultinject.WORKER_HANG, task.task_id)
        budget = task.config.budget
        try:
            if task.source is not None:
                spec = _adhoc_spec_cached(task)
            else:
                spec = get_benchmark(task.benchmark)
            if task.kind == "conventional":
                from ..aara.analyze import run_conventional

                program = _compiled_program(spec, "data-driven", budget=budget)
                with telemetry.span(
                    "static.verdict",
                    benchmark=task.benchmark,
                    max_degree=task.conventional_max_degree,
                ):
                    verdict = run_conventional(
                        program,
                        spec.data_driven_entry,
                        max_degree=task.conventional_max_degree,
                        budget=budget,
                    )
                outcome["verdict"] = _verdict_to_json(verdict)
                outcome["ok"] = True
            else:
                from ..inference import run_analysis
                from ..inference.serialize import result_to_json

                program = _compiled_program(spec, task.mode, budget=budget)
                dataset = _mode_dataset(spec, task.mode, task.root_seed, budget=budget)
                _source, entry = _mode_variant(spec, task.mode)
                mode_config = spec.config(task.config, hybrid=(task.mode == "hybrid"))
                rng = np.random.default_rng(task.seed)
                result = run_analysis(
                    program, entry, dataset, mode_config, task.method, rng=rng
                )
                outcome["result"] = result_to_json(result)
                outcome["ok"] = True
        except ReproError as exc:
            outcome["error"] = f"{type(exc).__name__}: {exc}"
            outcome["outcome"] = "error"
            outcome["failure"] = {
                "stage": failure_stage(exc),
                "error_class": type(exc).__name__,
                "attempts": 1,
                "elapsed": time.perf_counter() - started,
            }
        except Exception as exc:  # deterministic crash: report, don't retry
            outcome["error"] = f"crash {type(exc).__name__}: {exc}"
            outcome["outcome"] = "crash"
            outcome["failure"] = {
                "stage": failure_stage(exc),
                "error_class": type(exc).__name__,
                "attempts": 1,
                "elapsed": time.perf_counter() - started,
            }
    outcome["metrics"] = {
        "wall_seconds": time.perf_counter() - started,
        "max_rss_kb": max_rss_kb(),
        "pid": os.getpid(),
        "started_ts": started_ts,
    }
    if accumulator is not None:
        outcome["metrics"]["stages"] = {
            stage: round(seconds, 6)
            for stage, seconds in sorted(accumulator.totals.items())
        }
    return outcome


# ---------------------------------------------------------------------------
# Content-addressed result cache
# ---------------------------------------------------------------------------


def _config_signature(config: AnalysisConfig) -> Dict[str, Any]:
    """Result-affecting config fields (execution knobs excluded)."""
    signature = dataclasses.asdict(config)
    signature.pop("jobs", None)
    signature.pop("cache_dir", None)
    signature.pop("task_timeout", None)
    signature.pop("keep_going", None)
    # budgets only abort an analysis, never change what a successful one
    # computes — and aborted (non-ok) outcomes are never cached — so a
    # budgeted source submission can share its entry with the batch harness
    signature.pop("budget", None)
    return signature


def run_signature(
    config: AnalysisConfig,
    seed: int,
    methods: Sequence[str],
    benchmarks: Sequence[str],
) -> Dict[str, Any]:
    """Everything that determines a run's results, JSON-normalized.

    Written into the run journal's header and re-verified by ``bench
    resume``: if the code version, config, seed, method set or benchmark
    set changed since the journal was written, resuming would silently
    mix incompatible outcomes — refuse instead.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "config": _config_signature(config),
        "seed": int(seed),
        "methods": list(methods),
        "benchmarks": list(benchmarks),
    }
    # round-trip through JSON so tuples/lists compare equal to a replayed
    # (JSON-decoded) journal header
    return json.loads(json.dumps(payload, sort_keys=True, default=str))


class ResultCache:
    """On-disk memo of completed tasks, keyed by content hash.

    The key covers everything that determines a task's output: program
    source, entry point, effective (per-mode) configuration, data-
    collection protocol, derived seeds, and a code-version constant.
    Editing one benchmark's source therefore invalidates exactly that
    benchmark's rows.

    Integrity: every entry embeds a SHA-256 of its outcome payload,
    verified on load.  An entry that fails verification (torn write,
    bit rot, an injected ``cache-bitflip``) is *quarantined* — renamed to
    ``<key>.json.quarantined`` with a console warning — rather than
    silently deleted, so the evidence survives for diagnosis while the
    cell transparently recomputes.  :meth:`gc` bounds the cache's disk
    footprint (LRU by mtime) and sweeps orphaned ``*.tmp`` files left by
    writers killed mid-``store``.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, task: EvalTask) -> str:
        from ..suite import get_benchmark

        if task.source is not None:
            return self._adhoc_key(task)
        spec = get_benchmark(task.benchmark)
        payload: Dict[str, Any] = {
            "cache_version": CACHE_VERSION,
            "kind": task.kind,
            "benchmark": task.benchmark,
        }
        if task.kind == "conventional":
            payload.update(
                source=spec.data_driven_source,
                entry=spec.data_driven_entry,
                max_degree=task.conventional_max_degree,
            )
        else:
            source, entry = _mode_variant(spec, task.mode)
            mode_config = spec.config(task.config, hybrid=(task.mode == "hybrid"))
            payload.update(
                mode=task.mode,
                method=task.method,
                source=source,
                entry=entry,
                degree=spec.degree,
                config=_config_signature(mode_config),
                data_sizes=list(spec.data_sizes),
                repetitions=spec.repetitions,
                input_seed=input_seed(task.root_seed, task.benchmark),
                method_seed=task.seed,
            )
        blob = json.dumps(payload, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()

    def _adhoc_key(self, task: EvalTask) -> str:
        """Key for a source task: normalized source replaces registry spec.

        The data-collection protocol constants live in the payload so
        changing them invalidates exactly the ad-hoc entries.
        """
        from .adhoc import (
            ADHOC_DATA_SIZES,
            ADHOC_DEFAULT_DEGREE,
            ADHOC_REPETITIONS,
            normalize_source,
        )

        payload: Dict[str, Any] = {
            "cache_version": CACHE_VERSION,
            "kind": task.kind,
            "benchmark": task.benchmark,
            "source": normalize_source(task.source),
            "entry": task.entry,
        }
        if task.kind == "conventional":
            payload.update(max_degree=task.conventional_max_degree)
        else:
            payload.update(
                mode=task.mode,
                method=task.method,
                degree=ADHOC_DEFAULT_DEGREE if task.degree is None else task.degree,
                config=_config_signature(task.config),
                data_sizes=list(ADHOC_DATA_SIZES),
                repetitions=ADHOC_REPETITIONS,
                input_seed=input_seed(task.root_seed, task.benchmark),
                method_seed=task.seed,
            )
        blob = json.dumps(payload, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _payload_digest(outcome: Dict[str, Any]) -> str:
        return hashlib.sha256(
            json.dumps(outcome, sort_keys=True).encode()
        ).hexdigest()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Set a failed entry aside (don't delete the evidence)."""
        target = path.with_name(path.name + ".quarantined")
        try:
            os.replace(path, target)
        except OSError:
            return
        telemetry.counter("cache.quarantined", 1, entry=path.name)
        get_console().warn(
            f"cache entry {path.name} failed integrity check ({reason}); "
            f"quarantined as {target.name} and recomputing"
        )

    def load(self, task: EvalTask) -> Optional[Dict[str, Any]]:
        key = self.key(task)
        path = self.path(key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("entry is not a JSON object")
            if payload.get("cache_version") != CACHE_VERSION:
                # an older code version's format, not corruption: safe to drop
                with contextlib.suppress(OSError):
                    path.unlink()
                return None
            if payload.get("key") != key:
                raise ValueError("key mismatch")
            outcome = payload.get("outcome")
            if not isinstance(outcome, dict) or "task" not in outcome:
                raise ValueError("malformed outcome")
            if payload.get("sha256") != self._payload_digest(outcome):
                raise ValueError("payload checksum mismatch")
            return outcome
        except ValueError as exc:  # json.JSONDecodeError is a ValueError
            self._quarantine(path, str(exc))
            return None

    def store(self, task: EvalTask, outcome: Dict[str, Any]) -> None:
        key = self.key(task)
        payload = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "sha256": self._payload_digest(outcome),
            "outcome": outcome,
        }
        blob = json.dumps(payload)
        final = self.path(key)
        if faultinject.fault_point(faultinject.CACHE_TORN, task.task_id):
            # injected torn write: a truncated entry at the *final* path,
            # as a crashed non-atomic writer would have left behind
            final.write_text(blob[: max(1, len(blob) // 3)])
            return
        if faultinject.fault_point(faultinject.CACHE_BITFLIP, task.task_id):
            # injected bit rot: flip one payload byte so the entry still
            # parses-or-not unpredictably but always fails the checksum
            mid = len(blob) // 2
            blob = blob[:mid] + chr(ord(blob[mid]) ^ 0x01) + blob[mid + 1 :]
        # atomic publish: unique temp file in the same directory, then
        # rename — concurrent writers can race but never tear an entry
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=key[:16], suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def wipe(self) -> int:
        """Delete all entries (plus orphaned temp and quarantined files);
        returns the number removed."""
        removed = 0
        for pattern in ("*.json", "*.tmp", "*.json.quarantined"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        tmp_age_seconds: float = 60.0,
        drop_quarantined: bool = False,
    ) -> Dict[str, int]:
        """Bound the cache's disk footprint.

        Sweeps orphaned ``*.tmp`` files older than ``tmp_age_seconds``
        (younger ones may belong to a live writer), optionally drops
        quarantined entries, and — when ``max_bytes`` is set — evicts
        least-recently-used entries (by mtime) until under the cap.
        """
        stats = {"tmp_removed": 0, "quarantined_removed": 0, "evicted": 0, "kept": 0, "bytes": 0}
        now = time.time()
        for path in self.root.glob("*.tmp"):
            try:
                if now - path.stat().st_mtime >= tmp_age_seconds:
                    path.unlink()
                    stats["tmp_removed"] += 1
            except OSError:
                pass
        if drop_quarantined:
            for path in self.root.glob("*.json.quarantined"):
                try:
                    path.unlink()
                    stats["quarantined_removed"] += 1
                except OSError:
                    pass
        entries = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        kept = len(entries)
        if max_bytes is not None and total > max_bytes:
            for _mtime, size, path in sorted(entries, key=lambda e: e[0]):
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                kept -= 1
                stats["evicted"] += 1
        stats["kept"] = kept
        stats["bytes"] = total
        if stats["evicted"]:
            telemetry.counter("cache.evicted", stats["evicted"])
        return stats


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class RunnerReport:
    """Ordered task outcomes plus the structured metrics report.

    ``interrupted`` marks a partial report from a gracefully shut down
    run: ``outcomes`` then covers only the cells that finished before
    the shutdown (tasks never reach it half-done).
    """

    tasks: List[EvalTask]
    outcomes: List[Dict[str, Any]]
    jobs: int
    wall_seconds: float
    interrupted: bool = False
    shutdown_reason: Optional[str] = None

    def outcome_by_id(self) -> Dict[str, Dict[str, Any]]:
        return {o["task"]: o for o in self.outcomes}

    def metrics_json(self) -> Dict[str, Any]:
        entries = []
        for outcome in self.outcomes:
            metrics = dict(outcome.get("metrics", {}))
            metrics.update(
                task=outcome["task"],
                kind=outcome["kind"],
                benchmark=outcome["benchmark"],
                mode=outcome["mode"],
                method=outcome["method"],
                seed=outcome["seed"],
                ok=outcome["ok"],
                outcome=outcome.get("outcome", "ok" if outcome["ok"] else "error"),
                error=outcome["error"],
                failure=outcome.get("failure"),
            )
            entries.append(metrics)
        hits = sum(1 for e in entries if e.get("cache_hit"))
        # per-stage wall-clock aggregates across all tasks (telemetry span
        # self-times recorded by the worker) — makes BENCH_*.json
        # trajectories stage-attributable, not just per-task blobs
        stage_totals: Dict[str, float] = {}
        for entry in entries:
            for stage, seconds in (entry.get("stages") or {}).items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + float(seconds)
        from ..stats import engine as sampler_engine

        return {
            "version": 2,
            "jobs": self.jobs,
            "sampler_engine": sampler_engine.current(),
            "wall_seconds": self.wall_seconds,
            "interrupted": self.interrupted,
            "tasks": entries,
            "summary": {
                "total_tasks": len(entries),
                "errors": sum(1 for e in entries if not e["ok"]),
                "timeouts": sum(1 for e in entries if e.get("outcome") == "timeout"),
                "cache_hits": hits,
                "cache_misses": len(entries) - hits,
                # cache hits have attempts == 0: they ran nothing, so they
                # contribute no retries
                "retries": sum(max(0, e.get("attempts", 1) - 1) for e in entries),
                "task_wall_seconds": sum(e.get("wall_seconds", 0.0) for e in entries),
                "queue_wait_seconds": sum(
                    e.get("queue_wait_seconds", 0.0) for e in entries
                ),
                "stage_wall_seconds": {
                    stage: round(seconds, 6)
                    for stage, seconds in sorted(stage_totals.items())
                },
            },
        }

    def write_metrics(self, path: os.PathLike) -> None:
        """Atomically publish the metrics JSON (temp file + ``os.replace``).

        The runner's watchdog can kill the process at any moment; a plain
        ``write_text`` interrupted mid-write would leave a torn, unparsable
        report, so this uses the same atomic-publish pattern as the result
        cache.
        """
        final = Path(path)
        blob = json.dumps(self.metrics_json(), indent=2)
        fd, tmp = tempfile.mkstemp(
            dir=final.parent if str(final.parent) else ".",
            prefix=final.name,
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class EvalRunner:
    """Executes :class:`EvalTask` grids with caching, retries and metrics.

    ``jobs=1`` (the default) runs every task in the calling process —
    no pickling, plain tracebacks — so tests stay debuggable; ``jobs>1``
    fans tasks out on a ``ProcessPoolExecutor`` that persists across
    :meth:`run_tasks` calls.  Transient worker failures (a killed
    worker, a poisoned pool) are retried with exponential backoff up to
    ``max_retries`` times; deterministic analysis failures are captured
    inside the worker and never retried.

    ``task_timeout`` arms a per-task wall-clock watchdog: in serial mode
    a ``SIGALRM`` timer interrupts the task; in pool mode an overdue
    future's worker is killed, the pool is replaced, and unrelated
    in-flight tasks are resubmitted without burning one of their
    attempts.  A task that times out on every attempt is recorded with a
    ``timeout`` outcome.  ``fail_fast`` aborts the whole run with a
    :class:`ReproError` on the first failed cell instead of recording it.

    Durability: with a ``journal`` attached, every dispatch and every
    finished outcome is written ahead to the run journal, and outcomes
    preloaded via :meth:`preload` (from a journal replay) are returned
    without re-executing.  :meth:`install_signal_handlers` turns SIGINT/
    SIGTERM into a *graceful shutdown*: dispatching stops, in-flight
    tasks get ``shutdown_grace`` seconds to drain, and :meth:`run_tasks`
    returns a partial report marked ``interrupted`` (a second signal
    abandons in-flight work immediately).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        task_fn: Callable[[EvalTask], Dict[str, Any]] = execute_task,
        task_timeout: Optional[float] = None,
        fail_fast: bool = False,
        journal: Optional[RunJournal] = None,
        shutdown_grace: float = 5.0,
    ) -> None:
        self.jobs = max(1, int(jobs or 1))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.max_retries = max(0, int(max_retries))
        self.backoff_seconds = backoff_seconds
        self.task_fn = task_fn
        self.task_timeout = float(task_timeout) if task_timeout else None
        self.fail_fast = bool(fail_fast)
        self.journal = journal
        self.shutdown_grace = float(shutdown_grace)
        self.checkpoint_dir: Optional[str] = None
        self.preloaded: Dict[str, Dict[str, Any]] = {}
        self.shutdown_reason: Optional[str] = None
        self._shutdown = threading.Event()
        self._prev_handlers: Dict[int, Any] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self.history: List[Dict[str, Any]] = []  # all outcomes ever run

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "EvalRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        self.restore_signal_handlers()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- durability / shutdown ----------------------------------------------

    def preload(self, outcomes: Dict[str, Dict[str, Any]]) -> None:
        """Outcomes (by task id) to reuse instead of executing — the heart
        of ``bench resume``.  Only trust completed, ok outcomes here;
        failed cells should re-execute."""
        self.preloaded.update(outcomes)

    def interrupted(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self, reason: str = "signal") -> None:
        """Stop dispatching new tasks; in-flight tasks drain within
        ``shutdown_grace`` seconds.  Idempotent and signal-safe."""
        if self._shutdown.is_set():
            return
        self.shutdown_reason = reason
        self._shutdown.set()
        telemetry.counter("runner.shutdown_requested", 1, reason=reason)
        if self.journal is not None:
            self.journal.shutdown(reason)

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM into a graceful shutdown (main thread only).

        The first signal requests the shutdown and lets the current task
        finish; a second one raises :class:`KeyboardInterrupt` into the
        main thread so even a long-running serial cell is abandoned.
        """
        if threading.current_thread() is not threading.main_thread():
            return

        def _handle(signum, _frame):
            name = signal.Signals(signum).name
            if self._shutdown.is_set():
                raise KeyboardInterrupt(f"second {name}: abandoning in-flight work")
            self.request_shutdown(f"signal:{name}")

        for signum in (signal.SIGINT, signal.SIGTERM):
            self._prev_handlers[signum] = signal.signal(signum, _handle)

    def restore_signal_handlers(self) -> None:
        while self._prev_handlers:
            signum, previous = self._prev_handlers.popitem()
            with contextlib.suppress(ValueError):  # not the main thread
                signal.signal(signum, previous)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _reset_executor(self) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._executor = None

    # -- execution ----------------------------------------------------------

    def run_tasks(self, tasks: Sequence[EvalTask]) -> RunnerReport:
        telemetry.ensure_from_env()
        started = time.perf_counter()
        outcomes: Dict[EvalTask, Dict[str, Any]] = {}
        pending: List[EvalTask] = []
        env_checkpoint = os.environ.get(checkpoint.ENV_CHECKPOINT)
        if self.checkpoint_dir:
            # propagate to forked pool workers (and the in-process serial
            # path) so sampler chains checkpoint under the run directory
            os.environ[checkpoint.ENV_CHECKPOINT] = str(self.checkpoint_dir)
        try:
            with telemetry.span("runner.run_tasks", tasks=len(tasks), jobs=self.jobs):
                for task in tasks:
                    replayed = self.preloaded.get(task.task_id)
                    if replayed is not None:
                        outcome = copy.deepcopy(replayed)
                        outcome.setdefault("metrics", {})
                        outcome["metrics"]["resumed"] = True
                        outcome["metrics"].setdefault("attempts", 0)
                        outcomes[task] = outcome
                        telemetry.counter("resume.cells_skipped", 1, task=task.task_id)
                        continue
                    cached = self.cache.load(task) if self.cache else None
                    if cached is not None:
                        cached.setdefault("metrics", {})
                        cached["metrics"]["cache_hit"] = True
                        cached["metrics"]["attempts"] = 0
                        outcomes[task] = cached
                        telemetry.counter("runner.cache_hits", 1, task=task.task_id)
                        if self.journal is not None:
                            self.journal.task_finish(task.task_id, cached)
                    else:
                        pending.append(task)

                if pending and not self._shutdown.is_set():
                    telemetry.counter("runner.cache_misses", len(pending))
                    if self.jobs == 1:
                        fresh = self._run_serial(pending)
                    else:
                        fresh = self._run_pool(pending)
                    for task, outcome in fresh.items():
                        outcome["metrics"]["cache_hit"] = False
                        if self.cache and outcome["ok"]:
                            outcome["metrics"]["cache_key"] = self.cache.key(task)
                            self.cache.store(task, outcome)
                        outcomes[task] = outcome
        finally:
            if self.checkpoint_dir:
                if env_checkpoint is None:
                    os.environ.pop(checkpoint.ENV_CHECKPOINT, None)
                else:
                    os.environ[checkpoint.ENV_CHECKPOINT] = env_checkpoint

        # a graceful shutdown leaves later cells without outcomes: the
        # report is then partial, in grid order, and marked interrupted
        ordered = [outcomes[task] for task in tasks if task in outcomes]
        interrupted = self._shutdown.is_set() or len(ordered) < len(tasks)
        self.history.extend(ordered)
        report = RunnerReport(
            tasks=list(tasks),
            outcomes=ordered,
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
            interrupted=interrupted,
            shutdown_reason=self.shutdown_reason,
        )
        return report

    def _failure_outcome(self, task: EvalTask, exc: BaseException, attempts: int) -> Dict[str, Any]:
        kind = "timeout" if isinstance(exc, TaskTimeoutError) else "crash"
        return {
            "task": task.task_id,
            "kind": task.kind,
            "benchmark": task.benchmark,
            "mode": task.mode,
            "method": task.method,
            "seed": task.seed,
            "ok": False,
            "outcome": kind,
            "error": f"task failed after {attempts} attempt(s): {type(exc).__name__}: {exc}",
            "failure": {
                "stage": failure_stage(exc),
                "error_class": type(exc).__name__,
                "attempts": attempts,
                "elapsed": 0.0,
            },
            "result": None,
            "verdict": None,
            "metrics": {"wall_seconds": 0.0, "max_rss_kb": 0, "pid": os.getpid()},
        }

    def _record(self, results, task: EvalTask, outcome: Dict[str, Any], attempts: int) -> None:
        """File one finished outcome (patches attempt counts, honors fail-fast).

        Write-ahead discipline: the outcome hits the journal *here*, the
        moment the runner learns it — not at end-of-run — so a SIGKILL
        later can never lose a finished cell.
        """
        outcome.setdefault("metrics", {})["attempts"] = attempts
        if outcome.get("failure"):
            outcome["failure"]["attempts"] = attempts
        if attempts > 1:
            telemetry.counter("runner.retries", attempts - 1, task=task.task_id)
        results[task] = outcome
        if self.journal is not None:
            self.journal.task_finish(task.task_id, outcome)
        if self.fail_fast and not outcome["ok"]:
            raise ReproError(
                f"aborting (--fail-fast): task {task.task_id} failed: {outcome['error']}"
            )

    def _backoff(self, attempt: int, seed: int = 0) -> None:
        # deterministic jitter in [0.5, 1.5), derived from the task seed:
        # tasks that failed together retry fanned out, not in lockstep,
        # without touching any global rng state (shared with the server's
        # pool supervisor — see repro.backoff)
        backoff.sleep_backoff(self.backoff_seconds, attempt, seed)

    def _timeout_error(self, task: EvalTask) -> TaskTimeoutError:
        return TaskTimeoutError(
            f"task {task.task_id} exceeded the {self.task_timeout:g}s watchdog"
        )

    def _call_with_watchdog(self, task: EvalTask) -> Dict[str, Any]:
        """Run the task under a SIGALRM wall-clock watchdog (serial mode)."""

        def _expire(_signum, _frame):
            raise _WatchdogExpired()

        previous = signal.signal(signal.SIGALRM, _expire)
        signal.setitimer(signal.ITIMER_REAL, self.task_timeout)
        try:
            return self.task_fn(task)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def _run_serial(self, tasks: Sequence[EvalTask]) -> Dict[EvalTask, Dict[str, Any]]:
        results: Dict[EvalTask, Dict[str, Any]] = {}
        # SIGALRM only works on the main thread; elsewhere (tests driving
        # the runner from a worker thread) the serial watchdog is inert
        use_watchdog = (
            self.task_timeout is not None
            and threading.current_thread() is threading.main_thread()
        )
        for task in tasks:
            if self._shutdown.is_set():
                break
            if self.journal is not None:
                self.journal.task_start(task.task_id)
            # parent-side chaos: the dispatching process signals itself
            # (SIGTERM → graceful shutdown below; SIGKILL → journal replay)
            faultinject.fault_point(faultinject.PARENT_SIGNAL, task.task_id)
            if self._shutdown.is_set():
                break
            attempts = 0
            outcome: Optional[Dict[str, Any]] = None
            while True:
                attempts += 1
                try:
                    outcome = self._call_with_watchdog(task) if use_watchdog else self.task_fn(task)
                    break
                except KeyboardInterrupt:
                    # a second signal (or a bare Ctrl-C without handlers):
                    # abandon this cell — its journal entry stays unfinished
                    self.request_shutdown("keyboard-interrupt")
                    break
                except _WatchdogExpired:
                    if attempts > self.max_retries:
                        outcome = self._failure_outcome(task, self._timeout_error(task), attempts)
                        break
                    self._backoff(attempts, task.seed)
                except Exception as exc:
                    if attempts > self.max_retries:
                        outcome = self._failure_outcome(task, exc, attempts)
                        break
                    self._backoff(attempts, task.seed)
                if self._shutdown.is_set():
                    break
            if outcome is None:
                break
            self._record(results, task, outcome, attempts)
        return results

    def _kill_executor(self) -> None:
        """Kill every pool worker outright and discard the executor.

        Used when a worker hangs: ``shutdown`` alone would block on the
        stuck process, so the workers are SIGKILLed first.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _drain_on_shutdown(
        self,
        not_done: Set[Future],
        futures: Dict[Future, EvalTask],
        attempts: Dict[EvalTask, int],
        results: Dict[EvalTask, Dict[str, Any]],
    ) -> None:
        """Give in-flight futures ``shutdown_grace`` seconds, then kill.

        Drained outcomes are recorded (and journalled) normally; tasks
        still running at the deadline are abandoned — their journal
        entries stay unfinished, so ``resume`` re-executes them.
        """
        deadline = time.monotonic() + self.shutdown_grace
        while not_done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            done, not_done = wait(
                not_done, timeout=min(0.2, remaining), return_when=FIRST_COMPLETED
            )
            for future in done:
                task = futures[future]
                try:
                    outcome = future.result()
                except Exception:
                    continue  # worker died mid-drain: resume will rerun it
                self._record(results, task, outcome, attempts[task])
        if not_done:
            telemetry.counter("runner.shutdown_abandoned", len(not_done))
            self._kill_executor()

    def _run_pool(self, tasks: Sequence[EvalTask]) -> Dict[EvalTask, Dict[str, Any]]:
        try:
            return self._run_pool_inner(tasks)
        except KeyboardInterrupt:
            # second signal (or bare Ctrl-C): abandon in-flight work but
            # still return what finished — it is already journalled
            self.request_shutdown("keyboard-interrupt")
            self._kill_executor()
            return getattr(self, "_pool_results", {})

    def _run_pool_inner(self, tasks: Sequence[EvalTask]) -> Dict[EvalTask, Dict[str, Any]]:
        results: Dict[EvalTask, Dict[str, Any]] = {}
        self._pool_results = results
        attempts: Dict[EvalTask, int] = {task: 0 for task in tasks}
        queue = list(tasks)
        while queue and not self._shutdown.is_set():
            executor = self._ensure_executor()
            futures: Dict[Future, EvalTask] = {}
            deadlines: Dict[Future, float] = {}
            submitted_at: Dict[Future, float] = {}
            broken = False
            for task in queue:
                if self._shutdown.is_set():
                    break
                if self.journal is not None:
                    self.journal.task_start(task.task_id, attempt=attempts[task])
                # parent-side chaos: the dispatcher signals itself mid-grid
                faultinject.fault_point(faultinject.PARENT_SIGNAL, task.task_id)
                if self._shutdown.is_set():
                    break
                attempts[task] += 1
                try:
                    future = executor.submit(self.task_fn, task)
                except Exception:  # pool already broken: resubmit next round
                    broken = True
                    attempts[task] -= 1
                    break
                futures[future] = task
                submitted_at[future] = time.time()
                if self.task_timeout is not None:
                    deadlines[future] = time.monotonic() + self.task_timeout
            # O(1) membership via task ids (EvalTask hashing walks the
            # whole nested config dataclass — too hot for a rescan)
            submitted_ids: Set[str] = {t.task_id for t in futures.values()}
            retry: List[EvalTask] = [t for t in queue if t.task_id not in submitted_ids]
            not_done = set(futures)
            while not_done:
                if self._shutdown.is_set():
                    self._drain_on_shutdown(not_done, futures, attempts, results)
                    return results
                # cap the wait so a shutdown request is noticed promptly
                timeout = 0.5
                if deadlines:
                    nearest = min(deadlines[f] for f in not_done)
                    timeout = min(timeout, max(0.0, nearest - time.monotonic()))
                done, not_done = wait(not_done, timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        broken = True
                        if attempts[task] > self.max_retries:
                            self._record(
                                results, task, self._failure_outcome(task, exc, attempts[task]),
                                attempts[task],
                            )
                        else:
                            retry.append(task)
                    else:
                        # queue-wait: submission -> the worker actually
                        # starting (pool backlog + pickling + fork cost)
                        metrics = outcome.get("metrics") or {}
                        if "started_ts" in metrics and future in submitted_at:
                            queue_wait = max(
                                0.0, metrics["started_ts"] - submitted_at[future]
                            )
                            metrics["queue_wait_seconds"] = round(queue_wait, 6)
                            telemetry.gauge(
                                "runner.queue_wait_seconds", queue_wait, task=task.task_id
                            )
                        self._record(results, task, outcome, attempts[task])
                if deadlines and not_done:
                    now = time.monotonic()
                    overdue = {f for f in not_done if deadlines[f] <= now}
                    if overdue:
                        # a hung worker cannot be cancelled individually:
                        # kill the whole pool, time out the overdue tasks,
                        # and resubmit the innocent in-flight ones for free
                        for future in overdue:
                            task = futures[future]
                            if attempts[task] > self.max_retries:
                                self._record(
                                    results, task,
                                    self._failure_outcome(
                                        task, self._timeout_error(task), attempts[task]
                                    ),
                                    attempts[task],
                                )
                            else:
                                retry.append(task)
                        for future in not_done - overdue:
                            innocent = futures[future]
                            attempts[innocent] -= 1  # not their fault
                            retry.append(innocent)
                        self._kill_executor()
                        broken = True
                        not_done = set()
            queue = retry
            if queue and not self._shutdown.is_set():
                if broken:
                    self._reset_executor()
                self._backoff(
                    max(attempts[t] for t in queue), min(t.seed for t in queue)
                )
        return results


# ---------------------------------------------------------------------------
# One-call convenience: expand + run
# ---------------------------------------------------------------------------


def run_grid(
    specs: Sequence[object],
    config: AnalysisConfig = DEFAULT_CONFIG,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    modes: Sequence[str] = MODES,
    conventional_max_degree: int = 3,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[EvalRunner] = None,
) -> RunnerReport:
    """Expand the grid for ``specs`` and execute it.

    ``jobs``/``cache_dir`` default to the config's execution knobs; an
    explicit ``runner`` (e.g. a session-scoped one with a warm pool)
    overrides both.
    """
    tasks = expand_grid(
        specs,
        config=config,
        seed=seed,
        methods=methods,
        modes=modes,
        conventional_max_degree=conventional_max_degree,
    )
    if runner is not None:
        return runner.run_tasks(tasks)
    with EvalRunner(
        jobs=jobs if jobs is not None else config.jobs,
        cache_dir=cache_dir if cache_dir is not None else config.cache_dir,
        task_timeout=config.task_timeout,
        fail_fast=not config.keep_going,
    ) as owned:
        return owned.run_tasks(tasks)
