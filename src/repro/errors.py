"""Exception hierarchy for the Hybrid AARA reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  The hierarchy mirrors the pipeline stages:
lexing/parsing, simple typing, evaluation, static analysis, LP solving, and
Bayesian inference.
"""

from __future__ import annotations

#: process exit code for a run stopped by graceful shutdown (SIGINT/SIGTERM).
#: Distinct from 0 (clean), 1 (failed cells) and 2 (ReproError) so scripts
#: and CI can tell "interrupted, resume me" apart from genuine failure;
#: 75 is the sysexits.h EX_TEMPFAIL convention ("temporary failure, retry").
EXIT_INTERRUPTED = 75


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SourceError(ReproError):
    """An error attached to a position in a source program."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"{line}:{col if col is not None else '?'}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(SourceError):
    """Raised when the parser cannot build an AST."""


class NestingDepthError(ParseError):
    """Raised when a program nests expressions or patterns deeper than the
    parser's depth cap.  A :class:`ParseError` subclass so existing callers
    keep working, but distinguishable so the linter can render it as its
    own diagnostic (R004) instead of a generic syntax error."""


class TypeMismatchError(SourceError):
    """Raised by the simple type checker for ill-typed programs."""


class EvalError(ReproError):
    """Raised by the interpreter (e.g. ``error`` builtin, bad application)."""


class BudgetExceededError(EvalError):
    """Raised when an interpreter run exhausts its execution budget
    (step fuel, call depth, or constructed-value size).

    Carries which cap tripped so failure reports can say *why* a hostile
    run was aborted, not just that it was."""

    def __init__(self, message: str, kind: str = "steps", limit: int | None = None):
        self.kind = kind  # 'steps' | 'call-depth' | 'value-size'
        self.limit = limit
        super().__init__(message)


class StaticAnalysisError(ReproError):
    """Base class for conventional-AARA failures."""


class LintError(StaticAnalysisError):
    """Raised when ``repro.analysis`` rejects a program before analysis.

    Carries the error-severity :class:`~repro.analysis.Diagnostic` list so
    callers (CLI, eval harness) can re-render with carets/JSON/SARIF.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class IRVerificationError(ReproError):
    """Raised by the between-stage IR verifier (``repro.analysis.verify_ir``)
    when a ``normalize`` pass breaks a uniquify/ANF/share invariant."""

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class UnanalyzableError(StaticAnalysisError):
    """The program uses a construct that is opaque to static analysis.

    This reproduces the paper's "Cannot Analyze" verdict for benchmarks
    that contain code fragments such as OCaml's polymorphic comparator.
    """


class InfeasibleError(StaticAnalysisError):
    """The AARA linear program has no solution at the requested degree."""


class ResourceLimitError(StaticAnalysisError):
    """Constraint generation exceeded the configured LP size budget
    (variables/constraints).  An honest "the analysis itself would be too
    expensive" verdict for adversarial recursion shapes, reported as the
    ``resource-limit`` status rather than an infeasibility or a crash."""

    def __init__(self, message: str, kind: str = "variables", limit: int | None = None):
        self.kind = kind  # 'variables' | 'constraints'
        self.limit = limit
        super().__init__(message)


class LPError(ReproError):
    """Raised when the LP backend fails unexpectedly."""


class InferenceError(ReproError):
    """Raised when Bayesian inference cannot be run (e.g. empty polytope)."""


class SamplerDivergenceError(InferenceError):
    """Raised when an MCMC chain stays fully divergent after every
    self-healing restart (NaN log-densities, exploding trajectories)."""


class DatasetError(ReproError):
    """Raised for malformed or empty runtime-cost datasets."""


class TaskTimeoutError(ReproError):
    """Raised/recorded when an evaluation task exceeds its wall-clock
    watchdog budget (``--task-timeout``) on every attempt."""


def failure_stage(exc: BaseException) -> str:
    """Pipeline stage responsible for an exception (error provenance).

    Used by the evaluation harness to record *where* a grid cell failed
    (``lp``, ``sampler``, ``static``, ``runner``, …) alongside the error
    class, so partial reports can footnote failures precisely.  The order
    of the checks matters: subclasses must be tested before their bases
    (e.g. ``InfeasibleError`` before ``StaticAnalysisError``).
    """
    if isinstance(exc, TaskTimeoutError):
        return "runner"
    if isinstance(exc, (LPError, InfeasibleError)):
        return "lp"
    if isinstance(exc, SamplerDivergenceError):
        return "sampler"
    if isinstance(exc, LintError):
        return "lint"
    if isinstance(exc, IRVerificationError):
        return "normalize"
    if isinstance(exc, ResourceLimitError):
        return "resource-limit"
    if isinstance(exc, StaticAnalysisError):
        return "static"
    if isinstance(exc, DatasetError):
        return "data"
    if isinstance(exc, InferenceError):
        return "inference"
    if isinstance(exc, SourceError):
        return "frontend"
    if isinstance(exc, BudgetExceededError):
        return "eval-budget"
    if isinstance(exc, EvalError):
        return "eval"
    if isinstance(exc, ReproError):
        return "analysis"
    return "worker"
