"""Exception hierarchy for the Hybrid AARA reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  The hierarchy mirrors the pipeline stages:
lexing/parsing, simple typing, evaluation, static analysis, LP solving, and
Bayesian inference.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SourceError(ReproError):
    """An error attached to a position in a source program."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"{line}:{col if col is not None else '?'}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(SourceError):
    """Raised when the parser cannot build an AST."""


class TypeMismatchError(SourceError):
    """Raised by the simple type checker for ill-typed programs."""


class EvalError(ReproError):
    """Raised by the interpreter (e.g. ``error`` builtin, bad application)."""


class StaticAnalysisError(ReproError):
    """Base class for conventional-AARA failures."""


class UnanalyzableError(StaticAnalysisError):
    """The program uses a construct that is opaque to static analysis.

    This reproduces the paper's "Cannot Analyze" verdict for benchmarks
    that contain code fragments such as OCaml's polymorphic comparator.
    """


class InfeasibleError(StaticAnalysisError):
    """The AARA linear program has no solution at the requested degree."""


class LPError(ReproError):
    """Raised when the LP backend fails unexpectedly."""


class InferenceError(ReproError):
    """Raised when Bayesian inference cannot be run (e.g. empty polytope)."""


class DatasetError(ReproError):
    """Raised for malformed or empty runtime-cost datasets."""
