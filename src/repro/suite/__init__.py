"""Benchmark suite: programs, input generators, specifications."""

from . import generators
from .registry import BenchmarkSpec, all_benchmarks, benchmark_names, get_benchmark

__all__ = [
    "generators",
    "BenchmarkSpec",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
]
