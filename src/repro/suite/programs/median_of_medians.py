"""MedianOfMedians benchmark (paper Listings 11–12, Tables 1 and 7).

Linear-time selection via the median-of-medians pivot (Blum et al.).
Only ``partition`` ticks; the true worst case is linear, given by the
recurrence ``T(n) = n + T(⌈n/5⌉) + T(⌊7n/10⌋ + 6)`` (the classical side
bound after partitioning around the median of medians).  Conventional
AARA cannot reason about the median's balancing guarantee: the LP is
infeasible at every degree.  The hybrid variant analyzes the three
``partition`` call sites data-driven — the balance shows up statistically
in the observed result sizes, which is exactly what makes the hybrid
linear bound derivable (Section 2, "Challenges").
"""

from __future__ import annotations

from functools import lru_cache

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let incur_cost hd =
  if (hd mod 10) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec append xs ys =
  match xs with [] -> ys | hd :: tl -> hd :: append tl ys

let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | y :: ys -> if x <= y then x :: y :: ys else y :: insert x ys

let rec insertion_sort xs =
  match xs with [] -> [] | x :: rest -> insert x (insertion_sort rest)

let median_of_list_of_five xs =
  let sorted_xs = insertion_sort xs in
  match sorted_xs with
  | [ x1; x2; x3; x4; x5 ] -> (x3, [ x1; x2; x4; x5 ])
  | _ -> raise Invalid_input

let rec partition_into_blocks xs =
  match xs with
  | [] -> ([], [])
  | x1 :: x2 :: x3 :: x4 :: x5 :: tl ->
    let median, leftover = median_of_list_of_five [ x1; x2; x3; x4; x5 ] in
    let list_medians, list_leftover = partition_into_blocks tl in
    (median :: list_medians, append leftover list_leftover)
  | _ -> raise Invalid_input

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower_list, upper_list = partition pivot tl in
    let _ = incur_cost hd in
    if hd <= pivot then (hd :: lower_list, upper_list)
    else (lower_list, hd :: upper_list)

let rec lower_list_length_after_partition pivot xs =
  match xs with
  | [] -> 0
  | hd :: tl ->
    let lower_list_length = lower_list_length_after_partition pivot tl in
    if hd <= pivot then lower_list_length + 1 else lower_list_length

let rec list_length xs =
  match xs with [] -> 0 | hd :: tl -> 1 + list_length tl

let rec find_minimum_acc acc candidate xs =
  match xs with
  | [] -> (candidate, acc)
  | hd :: tl ->
    if hd < candidate then find_minimum_acc (candidate :: acc) hd tl
    else find_minimum_acc (hd :: acc) candidate tl

let find_minimum xs =
  match xs with
  | [] -> raise Invalid_input
  | hd :: tl -> find_minimum_acc [] hd tl

let rec preprocess_list_acc minima_acc xs =
  let xs_length = list_length xs in
  if (xs_length mod 5) = 0 then (minima_acc, xs)
  else
    let minimum, leftover = find_minimum xs in
    preprocess_list_acc (minimum :: minima_acc) leftover

let rec get_nth_element index xs =
  match xs with
  | [] -> raise Invalid_input
  | hd :: tl -> if index = 0 then hd else get_nth_element (index - 1) tl

let rec remove_first pivot xs =
  match xs with
  | [] -> []
  | hd :: tl -> if hd = pivot then tl else hd :: remove_first pivot tl
"""

_BODY_DATA = """
let rec median_of_medians index xs =
  match xs with
  | [] -> raise Invalid_input
  | _ ->
    let minima, xs_trimmed = preprocess_list_acc [] xs in
    let mod_five = list_length minima in
    if index < mod_five then get_nth_element (mod_five - index - 1) minima
    else
      let index_trimmed = index - mod_five in
      let list_medians, leftover_unused = partition_into_blocks xs_trimmed in
      let num_medians = list_length list_medians in
      let index_median = num_medians / 2 in
      let pivot = median_of_medians index_median list_medians in
      let xs_rest = remove_first pivot xs_trimmed in
      let lower_list_length =
        lower_list_length_after_partition pivot xs_rest in
      if index_trimmed = lower_list_length then
        let unused_a, unused_b = partition pivot xs_rest in
        pivot
      else if index_trimmed < lower_list_length then
        let lower_list, upper_unused = partition pivot xs_rest in
        median_of_medians index_trimmed lower_list
      else
        let new_index = index_trimmed - lower_list_length - 1 in
        let lower_unused, upper_list = partition pivot xs_rest in
        median_of_medians new_index upper_list
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + _BODY_DATA
    + """
let median_of_medians2 index xs = Raml.stat (median_of_medians index xs)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
let rec median_of_medians index xs =
  match xs with
  | [] -> raise Invalid_input
  | _ ->
    let minima, xs_trimmed = preprocess_list_acc [] xs in
    let mod_five = list_length minima in
    if index < mod_five then get_nth_element (mod_five - index - 1) minima
    else
      let index_trimmed = index - mod_five in
      let list_medians, leftover_unused = partition_into_blocks xs_trimmed in
      let num_medians = list_length list_medians in
      let index_median = num_medians / 2 in
      let pivot = median_of_medians index_median list_medians in
      let xs_rest = remove_first pivot xs_trimmed in
      let lower_list_length =
        lower_list_length_after_partition pivot xs_rest in
      if index_trimmed = lower_list_length then
        let unused_a, unused_b = Raml.stat (partition pivot xs_rest) in
        pivot
      else if index_trimmed < lower_list_length then
        let lower_list, upper_unused = Raml.stat (partition pivot xs_rest) in
        median_of_medians index_trimmed lower_list
      else
        let new_index = index_trimmed - lower_list_length - 1 in
        let lower_unused, upper_list = Raml.stat (partition pivot xs_rest) in
        median_of_medians new_index upper_list
"""
)


@lru_cache(maxsize=None)
def _recurrence(n: int) -> float:
    if n <= 5:
        return float(n)
    smaller = (n + 4) // 5
    larger = min(n - 1, (7 * n) // 10 + 6)
    return float(n) + _recurrence(smaller) + _recurrence(larger)


def truth(n: int) -> float:
    """Classical MoM worst-case recurrence with unit tick per element."""
    return _recurrence(n)


def shape(n: int):
    return [0, synthetic_list(n)]


def generate(rng, n: int):
    # distinct values keep selection semantics exact under remove_first
    values = rng.permutation(10 * n)[:n]
    index = int(rng.integers(0, max(n, 1)))
    from ...lang.values import from_python

    return [index, from_python([int(v) for v in values])]


SPEC = register(
    BenchmarkSpec(
        name="MedianOfMedians",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="median_of_medians2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="median_of_medians",
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=1,
        notes="ground truth from T(n)=n+T(n/5)+T(7n/10+6)",
    )
)
