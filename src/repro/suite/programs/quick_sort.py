"""QuickSort benchmark (paper Listing 14, Tables 1 and 9).

Deterministic quicksort with the head of the list as pivot.  The
comparison inside ``partition`` is ``complex_leq``, which is opaque to
static analysis (the paper's polymorphic comparator), so conventional
AARA cannot analyze either variant.  The true worst-case cost under the
``incur_cost`` metric (1.0 when the element is divisible by 5, else 0.5)
is ``1.0 * n(n-1)/2``, attained on sorted lists of multiples of 5.
"""

from __future__ import annotations

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let rec append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl -> hd :: append tl ys

let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower, upper = partition pivot tl in
    let _ = incur_cost hd in
    if complex_leq hd pivot then (hd :: lower, upper)
    else (lower, hd :: upper)
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + """
let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = partition hd tl in
    let lower_sorted = quicksort lower in
    let upper_sorted = quicksort upper in
    append lower_sorted (hd :: upper_sorted)

let quicksort2 xs = Raml.stat (quicksort xs)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
let rec quicksort xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let lower, upper = Raml.stat (partition hd tl) in
    let lower_sorted = quicksort lower in
    let upper_sorted = quicksort upper in
    append lower_sorted (hd :: upper_sorted)
"""
)


def truth(n: int) -> float:
    return 1.0 * n * (n - 1) / 2.0


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="QuickSort",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="quicksort2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="quicksort",
        degree=2,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=2,
        notes="worst case = ascending list of multiples of 5",
    )
)
