"""Round benchmark (paper Listing 15, Tables 1 and 10).

``round`` maps a list-encoded natural number to (roughly) the largest
power of two below it by halving and doubling; a ticking traversal then
walks the result.  The output length follows ``r(n) = 1 + 2·r(⌊(n−1)/2⌋)``
(so ``r(n) = 2^⌊log2 n⌋ − …``, always ≤ n), making the cost linear — but
conventional AARA would need an infinitely tall typing tree to see that
``double`` only duplicates structure the input paid for (Hoffmann 2011,
§5.4.3), so no degree is feasible.  Data-driven analysis only.
"""

from __future__ import annotations

from functools import lru_cache

from ..generators import multiples_list, random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

DATA_DRIVEN_SRC = """
let incur_cost hd =
  if (hd mod 10) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec double xs =
  match xs with [] -> [] | hd :: tl -> hd :: hd :: double tl

let rec half xs =
  match xs with
  | [] -> []
  | [ x ] -> []
  | x1 :: x2 :: tl -> x1 :: half tl

let rec round xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let half_result = half tl in
    let recursive_result = round half_result in
    hd :: double recursive_result

let rec linear_traversal xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let _ = incur_cost hd in
    hd :: linear_traversal tl

let round_followed_by_linear_traversal xs =
  let round_result = round xs in
  linear_traversal round_result

let round2 xs = Raml.stat (round_followed_by_linear_traversal xs)
"""


@lru_cache(maxsize=None)
def _round_size(n: int) -> int:
    if n <= 0:
        return 0
    return 1 + 2 * _round_size((n - 1) // 2)


def truth(n: int) -> float:
    return 1.0 * _round_size(n)


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="Round",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="round2",
        hybrid_source=None,
        hybrid_entry=None,
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 151, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=1,
        notes="output length r(n) = 1 + 2 r((n-1)/2); cost = r(n) worst ticks",
    )
)
