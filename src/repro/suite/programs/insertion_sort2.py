"""InsertionSort2 benchmark (paper Listing 10, Tables 1 and 6).

Insertion sort is run twice; the resource metric counts only the
comparisons of the *second* sort (the first sort's insert carries no
ticks).  Because the second sort always receives a sorted list, each
insert stops after one comparison: the true bound is ``1.0·(n−1)``,
linear.  Conventional AARA cannot see sortedness and needs the wrong
(quadratic) degree.
"""

from __future__ import annotations

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let incur_cost hd =
  if (hd mod 200) = 0 then Raml.tick 1.0
  else (
    if (hd mod 5) = 1 then Raml.tick 0.85
    else (
      if (hd mod 5) = 2 then Raml.tick 0.65
      else Raml.tick 0.5))

let rec insert x xs =
  match xs with
  | [] -> [ x ]
  | hd :: tl ->
    if x <= hd then x :: hd :: tl else hd :: insert x tl

let rec insertion_sort xs =
  match xs with
  | [] -> []
  | hd :: tl -> insert hd (insertion_sort tl)

let rec insert_second_time x xs =
  match xs with
  | [] -> [ x ]
  | hd :: tl ->
    let _ = incur_cost hd in
    if x <= hd then x :: hd :: tl else hd :: insert_second_time x tl
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + """
let rec insertion_sort_second_time xs =
  match xs with
  | [] -> []
  | hd :: tl -> insert_second_time hd (insertion_sort_second_time tl)

let double_insertion_sort xs =
  let sorted_xs = insertion_sort xs in
  Raml.stat (insertion_sort_second_time sorted_xs)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
let rec insertion_sort_second_time xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let rec_result = insertion_sort_second_time tl in
    Raml.stat (insert_second_time hd rec_result)

let double_insertion_sort xs =
  let sorted_xs = insertion_sort xs in
  insertion_sort_second_time sorted_xs
"""
)


def truth(n: int) -> float:
    return 1.0 * max(n - 1, 0)


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="InsertionSort2",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="double_insertion_sort",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="double_insertion_sort",
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="wrong-degree",
        truth_degree=1,
        notes="second sort of an already-sorted list is linear",
    )
)
