"""QuickSelect benchmark (paper Listing 13, Tables 1 and 8).

Head-pivot quickselect returning the i-th smallest element.  The hybrid
variant follows Listing 13b: a cost-free ``partition_cost_free`` computes
the branch decision, then the actual ``partition`` call in each branch is
analyzed data-driven.  True worst case is ``1.0 * n(n-1)/2`` (fully
unbalanced recursion on sorted inputs of multiples of 10).
"""

from __future__ import annotations

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let incur_cost hd =
  if (hd mod 10) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec partition pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower_list, upper_list = partition pivot tl in
    let _ = incur_cost hd in
    if complex_leq hd pivot then (hd :: lower_list, upper_list)
    else (lower_list, hd :: upper_list)

let rec list_length xs =
  match xs with [] -> 0 | hd :: tl -> 1 + list_length tl
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + """
let rec quickselect index xs =
  match xs with
  | [] -> raise Invalid_input
  | [ x ] -> if index = 0 then x else raise Invalid_input
  | hd :: tl ->
    let lower_list, upper_list = partition hd tl in
    let lower_list_length = list_length lower_list in
    if index < lower_list_length then quickselect index lower_list
    else if index = lower_list_length then hd
    else
      let new_index = index - lower_list_length - 1 in
      quickselect new_index upper_list

let quickselect2 index xs = Raml.stat (quickselect index xs)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
(* The cost-free probe only computes the branch decision; it uses the
   analyzable built-in <= (semantically identical to complex_leq), so the
   static part of the hybrid analysis stays tractable, mirroring the
   paper's Listing 13b workaround. *)
let rec partition_cost_free pivot xs =
  match xs with
  | [] -> ([], [])
  | hd :: tl ->
    let lower_list, upper_list = partition_cost_free pivot tl in
    if hd <= pivot then (hd :: lower_list, upper_list)
    else (lower_list, hd :: upper_list)

let rec quickselect index xs =
  match xs with
  | [] -> raise Invalid_input
  | [ x ] -> if index = 0 then x else raise Invalid_input
  | hd :: tl ->
    let lower_probe, upper_probe = partition_cost_free hd tl in
    let lower_list_length = list_length lower_probe in
    if index < lower_list_length then
      let lower_list, upper_unused = Raml.stat (partition hd tl) in
      quickselect index lower_list
    else if index = lower_list_length then
      let lower_unused, upper_unused = Raml.stat (partition hd tl) in
      hd
    else
      let lower_unused, upper_list = Raml.stat (partition hd tl) in
      let new_index = index - lower_list_length - 1 in
      quickselect new_index upper_list
"""
)


def truth(n: int) -> float:
    return 1.0 * n * (n - 1) / 2.0


def shape(n: int):
    return [0, synthetic_list(n)]


def generate(rng, n: int):
    index = int(rng.integers(0, max(n, 1)))
    return [index, random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="QuickSelect",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="quickselect2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="quickselect",
        degree=2,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=2,
        notes="worst case = fully unbalanced recursion on sorted input",
    )
)
