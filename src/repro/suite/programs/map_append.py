"""MapAppend benchmark (paper Listing 6, Tables 1–2, Figs. 7–9).

For each element of ``xs``, run a statically-unanalyzable
``complex_function`` and cons its result onto the recursive result, with
``ys`` as the base of the accumulation.  The bound is multivariate (one
coefficient per argument); the true worst case is ``1.0 * |xs|``
(one ``incur_cost`` call per element, maximal when divisible by 100).

The hybrid variant (Listing 6b) is the paper's showcase for the stat
interface: ``step_function`` *returns the lists it was given*, so the
data-driven judgment must thread their potential through to the recursive
call.
"""

from __future__ import annotations

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let incur_cost hd =
  if (hd mod 100) = 0 then Raml.tick 1.0
  else (
    if (hd mod 5) = 1 then Raml.tick 0.85
    else (
      if (hd mod 5) = 2 then Raml.tick 0.65
      else Raml.tick 0.5))

let complex_function hd =
  let _ = incur_cost hd in
  if complex_lt hd 42 then hd / 2 else hd * 2
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + """
let rec map_append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl ->
    let hd_new = complex_function hd in
    hd_new :: map_append tl ys

let map_append2 xs ys = Raml.stat (map_append xs ys)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
let step_function x xs ys =
  let x_new = complex_function x in
  (x_new, xs, ys)

let rec map_append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl ->
    let hd_new, rec_xs, rec_ys = Raml.stat (step_function hd tl ys) in
    hd_new :: map_append rec_xs rec_ys
"""
)


def truth(n: int) -> float:
    return 1.0 * n


def shape(n: int):
    return [synthetic_list(n), synthetic_list(n)]


def generate(rng, n: int):
    n2 = int(rng.integers(1, n + 1))
    return [random_int_list(rng, n), random_int_list(rng, n2)]


SPEC = register(
    BenchmarkSpec(
        name="MapAppend",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="map_append2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="map_append",
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=1,
        theta0=1.25,
        theta0_hybrid=1.0,
        notes="multivariate bound; canonical size (n, n) as in paper Table 2",
    )
)
