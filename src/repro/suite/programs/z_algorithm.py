"""ZAlgorithm benchmark (paper Listings 16–17, Tables 1 and 11).

The Z-algorithm computes, for each position, the length of the longest
common prefix of the string and its suffix, reusing the current Z-box to
skip comparisons.  Each of the n−1 main-loop iterations ticks once (≤ 1)
and each *successful* character comparison inside
``longest_common_prefix`` ticks once; the box invariant bounds total
successful comparisons by n−1.  True worst case: ``2.0·(n−1)``, attained
on all-equal strings of multiples of 100.  Conventional AARA cannot see
the amortization and needs a quadratic degree.
"""

from __future__ import annotations

from ..generators import random_small_alphabet_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

_COMMON = """
let incur_cost hd =
  if (hd mod 100) = 0 then Raml.tick 1.0
  else (
    if (hd mod 5) = 1 then Raml.tick 0.85
    else (
      if (hd mod 5) = 2 then Raml.tick 0.65
      else Raml.tick 0.5))

let rec list_length xs =
  match xs with [] -> 0 | hd :: tl -> 1 + list_length tl

let hd_exn xs =
  match xs with [] -> raise Invalid_input | hd :: tl -> hd

let min_int x1 x2 = if x1 < x2 then x1 else x2

let rec drop_n_elements xs n =
  match xs with
  | [] -> []
  | hd :: tl -> if n = 0 then hd :: tl else drop_n_elements tl (n - 1)

let rec longest_common_prefix xs1 xs2 =
  match xs1 with
  | [] -> 0
  | hd1 :: tl1 ->
    (match xs2 with
     | [] -> 0
     | hd2 :: tl2 ->
       if hd1 = hd2 then
         let _ = incur_cost (hd1 + hd2) in
         1 + longest_common_prefix tl1 tl2
       else 0)
"""

_Z_BODY = """
let rec z_algorithm_acc acc original_string current_string left right =
  match current_string with
  | [] -> acc
  | hd :: tl ->
    let _ = incur_cost hd in
    let current_index = list_length acc in
    let old_result =
      if left = 0 then 0 else hd_exn (drop_n_elements acc (left - 1)) in
    let current_result_initial =
      if current_index < right then min_int (right - current_index) old_result
      else 0 in
    let first_sublist =
      drop_n_elements original_string current_result_initial in
    let second_sublist =
      drop_n_elements current_string current_result_initial in
    let common_prefix_size = {LCP_CALL} in
    let current_result = current_result_initial + common_prefix_size in
    let cumulative_result_updated = current_result :: acc in
    if current_index + current_result > right then
      z_algorithm_acc cumulative_result_updated original_string tl
        current_index (current_index + current_result)
    else
      z_algorithm_acc cumulative_result_updated original_string tl left right

let rec reverse_acc acc xs =
  match xs with [] -> acc | hd :: tl -> reverse_acc (hd :: acc) tl

let z_algorithm xs =
  match xs with
  | [] -> []
  | hd :: tl -> reverse_acc [] (z_algorithm_acc [ 0 ] xs tl 0 0)
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + _Z_BODY.replace("{LCP_CALL}", "longest_common_prefix first_sublist second_sublist")
    + """
let z_algorithm2 xs = Raml.stat (z_algorithm xs)
"""
)

HYBRID_SRC = _COMMON + _Z_BODY.replace(
    "{LCP_CALL}", "Raml.stat (longest_common_prefix first_sublist second_sublist)"
)


def truth(n: int) -> float:
    return 2.0 * max(n - 1, 0)


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_small_alphabet_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="ZAlgorithm",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="z_algorithm2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="z_algorithm",
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 101, 5)),
        repetitions=2,
        expected_conventional="wrong-degree",
        truth_degree=1,
        theta0=1.5,
        theta0_hybrid=1.25,
        notes="amortized linear; worst case = all-equal expensive string",
    )
)
