"""EvenOddTail benchmark (paper Listing 9, Tables 1 and 5).

Repeatedly traverse a list-encoded natural number; halve it when even,
decrement when odd.  Each level pays a full ticking traversal, so the
exact worst case satisfies ``T(n) = n + (T(n/2) if n even else T(n−1))``
— linear overall (≤ 3n), attained on lists of multiples of 10.
Conventional AARA needs the wrong quadratic degree to find any bound.
Hybrid analysis is not applicable: there is no statically analyzable
remainder once the parity-driven recursion is cut out (Table 1 ∅).
"""

from __future__ import annotations

from functools import lru_cache

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

DATA_DRIVEN_SRC = """
let incur_cost hd =
  if (hd mod 10) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec linear_traversal xs =
  match xs with
  | [] -> []
  | hd :: tl ->
    let _ = incur_cost hd in
    hd :: linear_traversal tl

let rec is_even xs =
  match xs with
  | [] -> true
  | [ x ] -> false
  | x1 :: x2 :: tl -> is_even tl

let tail xs =
  match xs with [] -> raise Invalid_input | hd :: tl -> tl

let rec split xs =
  match xs with
  | [] -> []
  | [ x ] -> raise Invalid_input
  | x1 :: x2 :: tl -> x1 :: split tl

let rec even_split_odd_tail xs =
  let xs_traversed = linear_traversal xs in
  match xs_traversed with
  | [] -> []
  | hd :: tl ->
    let xs_is_even = is_even xs_traversed in
    if xs_is_even then
      let split_result = split xs_traversed in
      even_split_odd_tail split_result
    else
      let tail_result = tail xs_traversed in
      even_split_odd_tail tail_result

let even_split_odd_tail2 xs = Raml.stat (even_split_odd_tail xs)
"""


@lru_cache(maxsize=None)
def _worst(n: int) -> float:
    if n <= 0:
        return 0.0
    if n % 2 == 0:
        return float(n) + _worst(n // 2)
    return float(n) + _worst(n - 1)


def truth(n: int) -> float:
    return _worst(n)


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="EvenOddTail",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="even_split_odd_tail2",
        hybrid_source=None,
        hybrid_entry=None,
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 151, 5)),
        repetitions=2,
        expected_conventional="wrong-degree",
        truth_degree=1,
        notes="deterministic: T(n) = n + (T(n/2) if even else T(n-1))",
    )
)
