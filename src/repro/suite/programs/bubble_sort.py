"""BubbleSort benchmark (paper Listing 7, Tables 1 and 3).

Saturation-based bubble sort: scan-and-swap passes repeat until no swap
occurs.  Conventional AARA cannot even bound the number of passes (the
recursion in ``bubble_sort`` is not structural), so both the conventional
and hybrid analyses are impossible — only fully data-driven analysis
applies (Table 1 marks the hybrid column ∅).  True worst case:
``1.0·n·(n−1)`` (reverse-sorted multiples of 10: n passes of n−1 maximal
ticks; the final clean pass still compares).
"""

from __future__ import annotations

from ..generators import random_int_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_list

DATA_DRIVEN_SRC = """
let incur_cost hd =
  if (hd mod 10) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let rec scan_and_swap xs =
  match xs with
  | [] -> ([], false)
  | [ x ] -> ([ x ], false)
  | x1 :: x2 :: tl ->
    let _ = incur_cost x1 in
    if x1 <= x2 then
      let recursive_result, is_swapped = scan_and_swap (x2 :: tl) in
      (x1 :: recursive_result, is_swapped)
    else
      let recursive_result, swapped_unused = scan_and_swap (x1 :: tl) in
      (x2 :: recursive_result, true)

let rec bubble_sort xs =
  let xs_scanned, is_swapped = scan_and_swap xs in
  if is_swapped then bubble_sort xs_scanned else xs_scanned

let bubble_sort2 xs = Raml.stat (bubble_sort xs)
"""


def truth(n: int) -> float:
    return 1.0 * n * max(n - 1, 0)


def shape(n: int):
    return [synthetic_list(n)]


def generate(rng, n: int):
    return [random_int_list(rng, n)]


SPEC = register(
    BenchmarkSpec(
        name="BubbleSort",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="bubble_sort2",
        hybrid_source=None,
        hybrid_entry=None,
        degree=2,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(5, 81, 5)),
        repetitions=2,
        expected_conventional="cannot-analyze",
        truth_degree=2,
        theta0=1.5,
        notes="saturation recursion — hybrid analysis impossible (∅)",
    )
)
