"""Concat benchmark (paper Listing 8, Tables 1 and 4, Figs. 11–12).

Flatten a nested list by mapping ``complex_function`` over each inner
list while appending.  The true worst case is ``1.0 * (total inner
size)``; in AARA terms the bound lives in the *inner* coefficient of the
nested-list annotation.  Canonical size n corresponds to the paper's
(total, outer) = (5n, n) parameterization ((50, 10) at n = 10, Table 4).
"""

from __future__ import annotations

from ..generators import random_nested_list
from ..registry import BenchmarkSpec, register
from ...aara.bound import synthetic_nested_list

_COMMON = """
let incur_cost hd =
  if (hd mod 5) = 0 then Raml.tick 1.0 else Raml.tick 0.5

let complex_function hd =
  let _ = incur_cost hd in
  if complex_lt hd 42 then hd / 2 else hd * 2

let rec map_append xs ys =
  match xs with
  | [] -> ys
  | hd :: tl ->
    let hd_new = complex_function hd in
    hd_new :: map_append tl ys
"""

DATA_DRIVEN_SRC = (
    _COMMON
    + """
let rec concat xss =
  match xss with
  | [] -> []
  | hd :: tl -> map_append hd (concat tl)

let concat2 xss = Raml.stat (concat xss)
"""
)

HYBRID_SRC = (
    _COMMON
    + """
let rec concat xss =
  match xss with
  | [] -> []
  | hd :: tl ->
    let rec_tl = concat tl in
    Raml.stat (map_append hd rec_tl)
"""
)


def truth(n: int) -> float:
    return 1.0 * 5 * n


def shape(n: int):
    return [synthetic_nested_list(n, 5 * n)]


def generate(rng, n: int):
    return [random_nested_list(rng, n, 5 * n)]


SPEC = register(
    BenchmarkSpec(
        name="Concat",
        data_driven_source=DATA_DRIVEN_SRC,
        data_driven_entry="concat2",
        hybrid_source=HYBRID_SRC,
        hybrid_entry="concat",
        degree=1,
        truth=truth,
        shape_fn=shape,
        generator=generate,
        data_sizes=tuple(range(2, 25, 2)),
        repetitions=3,
        expected_conventional="cannot-analyze",
        truth_degree=1,
        theta0=1.5,
        theta0_hybrid=1.5,
        notes="canonical size n = outer length; total inner size = 5n",
    )
)
