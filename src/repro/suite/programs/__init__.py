"""The 10 benchmark programs of the paper's evaluation (Appendix C)."""

from . import (
    bubble_sort,
    concat,
    even_odd_tail,
    insertion_sort2,
    map_append,
    median_of_medians,
    quick_select,
    quick_sort,
    round_power,
    z_algorithm,
)

__all__ = [
    "bubble_sort",
    "concat",
    "even_odd_tail",
    "insertion_sort2",
    "map_append",
    "median_of_medians",
    "quick_select",
    "quick_sort",
    "round_power",
    "z_algorithm",
]
