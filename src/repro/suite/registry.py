"""Benchmark specifications for the Section 7 evaluation suite.

Each benchmark carries everything the evaluation harness needs: the
data-driven and hybrid program sources (Appendix C), entry points, input
generator, canonical size parameterization (shape function + analytic
ground-truth worst-case curve), the polynomial degree, and the expected
conventional-AARA verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import AnalysisConfig
from ..errors import ReproError
from ..lang.values import Value


@dataclass(frozen=True)
class BenchmarkSpec:
    name: str
    #: source of the fully data-driven variant (stat around the whole task)
    data_driven_source: str
    #: entry function of the data-driven variant
    data_driven_entry: str
    #: source of the hybrid variant (None when hybrid analysis is impossible,
    #: as for BubbleSort / Round / EvenOddTail in Table 1)
    hybrid_source: Optional[str]
    hybrid_entry: Optional[str]
    #: maximum polynomial degree for the analysis
    degree: int
    #: ground-truth worst-case cost at canonical size n
    truth: Callable[[int], float]
    #: synthetic argument shapes at canonical size n (for evaluating bounds)
    shape_fn: Callable[[int], List[Value]]
    #: draw one input-argument vector of canonical size n
    generator: Callable[[np.random.Generator, int], List[Value]]
    #: canonical sizes used for runtime-data collection
    data_sizes: Sequence[int]
    #: repetitions per size during data collection
    repetitions: int = 1
    #: 'cannot-analyze' or 'wrong-degree' (paper Table 1, column 2)
    expected_conventional: str = "cannot-analyze"
    #: the true asymptotic degree of the ground-truth bound
    truth_degree: int = 1
    #: per-benchmark Weibull shape for BayesPC (Appendix B.2)
    theta0: float = 1.0
    theta0_hybrid: Optional[float] = None
    notes: str = ""

    def inputs(self, rng: np.random.Generator) -> List[List[Value]]:
        out = []
        for _ in range(self.repetitions):
            for n in self.data_sizes:
                out.append(self.generator(rng, n))
        return out

    def config(self, base: AnalysisConfig, hybrid: bool = False) -> AnalysisConfig:
        theta0 = self.theta0
        if hybrid and self.theta0_hybrid is not None:
            theta0 = self.theta0_hybrid
        from dataclasses import replace

        return base.with_(
            degree=self.degree, bayespc=replace(base.bayespc, theta0=theta0)
        )


_REGISTRY: dict = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_benchmark(name: str) -> BenchmarkSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def benchmark_names() -> List[str]:
    _ensure_loaded()
    return list(_REGISTRY.keys())


def all_benchmarks() -> List[BenchmarkSpec]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from .programs import (  # noqa: F401
        bubble_sort,
        concat,
        even_odd_tail,
        insertion_sort2,
        map_append,
        median_of_medians,
        quick_select,
        quick_sort,
        round_power,
        z_algorithm,
    )
