"""Input generators for runtime-cost data collection (Section 7).

The paper stresses that uniformly random inputs rarely trigger worst-case
behaviour — that is precisely what makes Opt unsound and motivates the
Bayesian treatment — so the default generators ARE uniformly random.
Adversarial generators are provided separately for ground-truth validation
and for the Theorem 6.2 convergence ablation (mixing in worst-case inputs
with positive probability).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..lang.values import VList, Value, from_python


def random_int_list(rng: np.random.Generator, n: int, lo: int = 0, hi: int = 1000) -> Value:
    return from_python([int(v) for v in rng.integers(lo, hi, size=n)])


def random_small_alphabet_list(rng: np.random.Generator, n: int, alphabet: int = 8) -> Value:
    """Lists over a small alphabet (longer common prefixes for ZAlgorithm)."""
    return from_python([int(v) * 5 for v in rng.integers(0, alphabet, size=n)])


def random_nested_list(
    rng: np.random.Generator, outer: int, total: int, lo: int = 0, hi: int = 1000
) -> Value:
    """An ``int list list`` with ``outer`` inner lists totalling ``total``."""
    if outer <= 0:
        return VList(())
    cuts = sorted(rng.integers(0, total + 1, size=outer - 1).tolist())
    bounds = [0] + cuts + [total]
    inners = []
    for i in range(outer):
        size = bounds[i + 1] - bounds[i]
        inners.append(random_int_list(rng, size, lo, hi))
    return VList(tuple(inners))


def sorted_descending_list(n: int, step: int = 10) -> Value:
    """Reverse-sorted multiples of ``step`` — worst case for BubbleSort
    (every adjacent pair is out of order and every tick is maximal)."""
    return from_python([step * (n - i) for i in range(n)])


def sorted_ascending_expensive(n: int, step: int = 100) -> Value:
    """Sorted multiples of ``step`` — worst case for head-pivot QuickSort
    (fully unbalanced partitions, maximal per-element tick)."""
    return from_python([step * (i + 1) for i in range(n)])


def all_equal_expensive(n: int, value: int = 100) -> Value:
    """All-equal expensive elements — worst case for ZAlgorithm."""
    return from_python([value] * n)


def multiples_list(n: int, step: int = 10) -> Value:
    """n random-order multiples of ``step`` (maximal ticks, random order)."""
    values = [step * (i + 1) for i in range(n)]
    return from_python(values)


class MixedGenerator:
    """Random inputs with probability 1-p, adversarial with probability p.

    Used by the Theorem 6.2 ablation: worst-case inputs appear in the data
    with positive probability, so soundness converges as N grows.
    """

    def __init__(self, random_fn, adversarial_fn, p: float):
        self.random_fn = random_fn
        self.adversarial_fn = adversarial_fn
        self.p = p

    def __call__(self, rng: np.random.Generator, n: int) -> List[Value]:
        if rng.uniform() < self.p:
            return self.adversarial_fn(rng, n)
        return self.random_fn(rng, n)
